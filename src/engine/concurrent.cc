#include "engine/concurrent.h"

#include <chrono>
#include <string>
#include <utility>

#include "obs/latency.h"
#include "obs/trace.h"

namespace lmerge {

ConcurrentMerger::ConcurrentMerger(MergeAlgorithm* algorithm,
                                   ConcurrentMergerOptions options)
    : algorithm_(algorithm),
      options_(std::move(options)),
      max_stable_(algorithm == nullptr ? kMinTimestamp
                                       : algorithm->max_stable()) {
  LM_CHECK(algorithm != nullptr);
  LM_CHECK(options_.ring_capacity >= 2);
  LM_CHECK(options_.max_batch >= 1);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string& scope = options_.metrics_scope;
  stalls_metric_ = registry.GetCounter(scope + ".backpressure_stalls");
  batches_metric_ = registry.GetCounter(scope + ".batches");
  busy_us_metric_ = registry.GetCounter(scope + ".busy_us");
  idle_us_metric_ = registry.GetCounter(scope + ".idle_us");
  batch_size_metric_ = registry.GetHistogram(scope + ".batch_size");
  ring_occupancy_metric_ = registry.GetHistogram(scope + ".ring_occupancy");
  rx_to_merge_metric_ = registry.GetHistogram("latency.rx_to_merge_us");
  merge_us_metric_ = registry.GetHistogram("latency.merge_us");
  slots_.reserve(kMaxStreams);
  const int n = algorithm_->stream_count();
  LM_CHECK(static_cast<size_t>(n) <= kMaxStreams);
  for (int s = 0; s < n; ++s) {
    slots_.push_back(std::make_unique<InputSlot>(options_.ring_capacity));
  }
  slot_count_.store(n, std::memory_order_release);
  scratch_.reserve(options_.max_batch);
  merge_thread_ = std::thread([this] { MergeLoop(); });
}

ConcurrentMerger::~ConcurrentMerger() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(wake_mutex_);
  }
  wake_cv_.NotifyAll();
  if (merge_thread_.joinable()) merge_thread_.join();
}

Status ConcurrentMerger::Precheck(int stream,
                                  const StreamElement& element) const {
  if (stream < 0 || stream >= slot_count_.load(std::memory_order_acquire) ||
      !slots_[static_cast<size_t>(stream)]->active.load(
          std::memory_order_acquire)) {
    return Status::FailedPrecondition("delivery on inactive stream " +
                                      std::to_string(stream));
  }
  if (poisoned_.load(std::memory_order_acquire)) return error();
  // Stateless element validation (the exact error OnElement would return),
  // so an accepted element never fails later on the merge thread.
  return algorithm_->ValidateElement(element);
}

void ConcurrentMerger::EnqueueBlocking(int stream, StreamElement element) {
  InputSlot& slot = *slots_[static_cast<size_t>(stream)];
  // Commit the element to the books before it becomes visible, so pending_
  // never transiently reads 0 while work is in flight.
  pending_.fetch_add(1, std::memory_order_relaxed);
  int spins = 0;
  while (!slot.ring.TryPush(element)) {
    if (++spins < 64) continue;
    if (spins == 64) stalls_metric_->Increment();
    WakeMerge();
    MutexLock lock(slot.wait_mutex);
    slot.producer_waiting.store(true, std::memory_order_release);
    // Timed wait: a notify can race the flag, so the timeout is the
    // lost-wakeup backstop; backpressure latency stays bounded at ~1ms.
    (void)slot.wait_cv.WaitFor(lock, std::chrono::milliseconds(1));
    slot.producer_waiting.store(false, std::memory_order_release);
  }
  slot.enqueued_count += 1;
  delivered_.fetch_add(1, std::memory_order_release);
  WakeMerge();
}

void ConcurrentMerger::PushStamp(int stream, size_t count,
                                 const obs::IngestStamp& stamp) {
  InputSlot& slot = *slots_[static_cast<size_t>(stream)];
  BatchStamp entry;
  entry.begin_count = slot.enqueued_count - count;
  entry.end_count = slot.enqueued_count;
  entry.stamp = stamp;
  // Full ring: drop the stamp.  Latency samples are best-effort; elements
  // never are.
  (void)slot.stamp_ring.TryPush(entry);
}

void ConcurrentMerger::WakeMerge() {
  if (merge_sleeping_.load(std::memory_order_acquire)) {
    {
      MutexLock lock(wake_mutex_);
    }
    wake_cv_.NotifyOne();
  }
}

void ConcurrentMerger::Deliver(int stream, const StreamElement& element) {
  LM_CHECK(stream >= 0 &&
           stream < slot_count_.load(std::memory_order_acquire));
  EnqueueBlocking(stream, element);
}

Status ConcurrentMerger::TryDeliver(int stream, const StreamElement& element) {
  const Status status = Precheck(stream, element);
  if (!status.ok()) return status;
  EnqueueBlocking(stream, element);
  return Status::Ok();
}

Status ConcurrentMerger::TryDeliverBatch(int stream,
                                         std::span<StreamElement> batch) {
  for (StreamElement& element : batch) {
    const Status status = Precheck(stream, element);
    if (!status.ok()) return status;
    EnqueueBlocking(stream, std::move(element));
  }
  return Status::Ok();
}

Status ConcurrentMerger::TryDeliverBatch(int stream,
                                         std::span<StreamElement> batch,
                                         const obs::IngestStamp& stamp) {
  const size_t count = batch.size();
  const Status status = TryDeliverBatch(stream, batch);
  // Stamp only a fully-enqueued batch: a validation failure tears the
  // session down anyway, and a stamp whose range overshoots the elements
  // actually enqueued would pin the stamp ring forever.
  if (status.ok() && count > 0 && !stamp.empty()) {
    PushStamp(stream, count, stamp);
  }
  return status;
}

void ConcurrentMerger::DeliverBatch(int stream,
                                    std::span<StreamElement> batch) {
  LM_CHECK(stream >= 0 &&
           stream < slot_count_.load(std::memory_order_acquire));
  for (StreamElement& element : batch) {
    EnqueueBlocking(stream, std::move(element));
  }
}

void ConcurrentMerger::DeliverBatch(int stream,
                                    std::span<StreamElement> batch,
                                    const obs::IngestStamp& stamp) {
  const size_t count = batch.size();
  DeliverBatch(stream, batch);
  if (count > 0 && !stamp.empty()) PushStamp(stream, count, stamp);
}

int ConcurrentMerger::AddStream() {
  ControlOp op;
  op.kind = ControlOp::kAddStream;
  std::future<int> result = op.result.get_future();
  {
    MutexLock lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  return result.get();
}

void ConcurrentMerger::RemoveStream(int stream) {
  if (stream < 0 || stream >= slot_count_.load(std::memory_order_acquire)) {
    return;
  }
  // Close the producer side first (new TryDeliver calls fail immediately);
  // idempotent, so a second RemoveStream is a no-op.
  if (!slots_[static_cast<size_t>(stream)]->active.exchange(false)) return;
  ControlOp op;
  op.kind = ControlOp::kRemoveStream;
  op.stream = stream;
  std::future<int> result = op.result.get_future();
  {
    MutexLock lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  result.get();
}

void ConcurrentMerger::CallOnMergeThread(std::function<void()> fn) {
  CallOnMergeThreadAsync(std::move(fn)).get();
}

std::future<int> ConcurrentMerger::CallOnMergeThreadAsync(
    std::function<void()> fn) {
  ControlOp op;
  op.kind = ControlOp::kCall;
  op.fn = std::move(fn);
  std::future<int> result = op.result.get_future();
  {
    MutexLock lock(control_mutex_);
    control_ops_.push_back(std::move(op));
    has_control_ops_.store(true, std::memory_order_release);
  }
  WakeMerge();
  return result;
}

void ConcurrentMerger::WaitIdle() {
  MutexLock lock(idle_mutex_);
  while (pending_.load(std::memory_order_acquire) != 0) {
    idle_cv_.Wait(lock);
  }
}

Status ConcurrentMerger::error() const {
  MutexLock lock(control_mutex_);
  return error_;
}

obs::MetricsSnapshot ConcurrentMerger::MetricsSnapshot() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // The algorithm's counters are plain ints owned by the merge thread;
  // export them from there so the snapshot is a consistent point between
  // batches.
  CallOnMergeThread([this, &registry] {
    algorithm_->ExportMetrics(&registry);
  });
  registry.GetExportedCounter("engine.delivered")->Set(delivered_count());
  registry.GetGauge("engine.pending")
      ->Set(pending_.load(std::memory_order_acquire));
  registry.GetGauge("engine.streams")
      ->Set(slot_count_.load(std::memory_order_acquire));
  return registry.Snapshot();
}

void ConcurrentMerger::RecordError(const Status& status) {
  MutexLock lock(control_mutex_);
  if (error_.ok()) error_ = status;
  poisoned_.store(true, std::memory_order_release);
}

size_t ConcurrentMerger::DrainRing(int stream) {
  InputSlot& slot = *slots_[static_cast<size_t>(stream)];
  scratch_.clear();
  // Occupancy sampled before the pop: what the producer side had built up.
  const size_t occupied = slot.ring.size();
  const size_t n = slot.ring.Pop(&scratch_, options_.max_batch);
  if (n == 0) return 0;
  ring_occupancy_metric_->Record(static_cast<int64_t>(occupied));
  batch_size_metric_->Record(static_cast<int64_t>(n));
  batches_metric_->Increment();
  // Fold every stamp covering this drain and republish it thread-locally
  // for same-thread consumers (the fan-out sink reads it per element).
  // Always runs — even with metrics off the wire-carried origin must keep
  // flowing so `lmerge_subscribe --latency` works against a bare server.
  // A stamp straddling the drain boundary stays queued for the next batch.
  slot.drained_count += n;
  obs::IngestStamp batch_stamp;
  while (BatchStamp* entry = slot.stamp_ring.Peek()) {
    if (entry->begin_count >= slot.drained_count) break;
    batch_stamp.FoldOldest(entry->stamp);
    if (entry->end_count > slot.drained_count) break;
    slot.stamp_ring.PopFront();
  }
  obs::SetCurrentIngestStamp(batch_stamp);
  const bool timed = obs::MetricsRegistry::enabled();
  if (timed && batch_stamp.rx_us != 0) {
    const int64_t wait_us = obs::MonotonicMicros() - batch_stamp.rx_us;
    rx_to_merge_metric_->Record(wait_us > 0 ? wait_us : 0);
  }
  if (!poisoned_.load(std::memory_order_relaxed)) {
    LMERGE_TRACE_SPAN("merge_batch", "engine");
    const int64_t merge_start = timed ? obs::MonotonicMicros() : 0;
    const Status status = algorithm_->ProcessBatch(
        stream, std::span<const StreamElement>(scratch_.data(), n));
    if (timed) {
      merge_us_metric_->Record(obs::MonotonicMicros() - merge_start);
    }
    if (!status.ok()) RecordError(status);
    max_stable_.store(algorithm_->max_stable(), std::memory_order_release);
    if (options_.after_batch) options_.after_batch();
  }
  if (slot.producer_waiting.load(std::memory_order_acquire)) {
    {
      MutexLock lock(slot.wait_mutex);
    }
    slot.wait_cv.NotifyAll();
  }
  // Notify idle waiters under the lock only when this drain emptied the
  // books (cheap check: the fetch_sub returned exactly n).
  if (pending_.fetch_sub(static_cast<int64_t>(n),
                         std::memory_order_acq_rel) ==
      static_cast<int64_t>(n)) {
    MutexLock lock(idle_mutex_);
    idle_cv_.NotifyAll();
  }
  return n;
}

size_t ConcurrentMerger::ProcessControlOps() {
  if (!has_control_ops_.load(std::memory_order_acquire)) return 0;
  std::deque<ControlOp> ops;
  {
    MutexLock lock(control_mutex_);
    ops.swap(control_ops_);
    has_control_ops_.store(false, std::memory_order_release);
  }
  for (ControlOp& op : ops) {
    if (op.kind == ControlOp::kAddStream) {
      const int id = algorithm_->AddStream();
      LM_CHECK(slots_.size() < kMaxStreams);
      slots_.push_back(std::make_unique<InputSlot>(options_.ring_capacity));
      slot_count_.store(static_cast<int>(slots_.size()),
                        std::memory_order_release);
      LM_CHECK(id == static_cast<int>(slots_.size()) - 1);
      op.result.set_value(id);
    } else if (op.kind == ControlOp::kCall) {
      op.fn();
      op.result.set_value(0);
    } else {
      // Drain everything the departing stream already enqueued, then detach
      // it — its elements are merged, never dropped.
      while (DrainRing(op.stream) > 0) {
      }
      if (op.stream < algorithm_->stream_count() &&
          algorithm_->stream_active(op.stream)) {
        algorithm_->RemoveStream(op.stream);
        // RemoveStream can release buffered elements into the sink; flush
        // them like any batch so a buffering sink never holds them past
        // the departure barrier.
        if (options_.after_batch) options_.after_batch();
      }
      op.result.set_value(0);
    }
  }
  return ops.size();
}

void ConcurrentMerger::MergeLoop() {
  using Clock = std::chrono::steady_clock;
  const auto elapsed_us = [](Clock::time_point since) {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - since)
        .count();
  };
  int idle_rounds = 0;
  while (true) {
    // Busy/idle accounting is gated on the metrics switch so the metrics-off
    // baseline pays no clock reads in this loop.
    const bool timed = obs::MetricsRegistry::enabled();
    Clock::time_point round_start;
    if (timed) round_start = Clock::now();
    size_t work = ProcessControlOps();
    const int n = slot_count_.load(std::memory_order_acquire);
    for (int s = 0; s < n; ++s) work += DrainRing(s);
    if (work > 0) {
      if (timed) busy_us_metric_->Add(elapsed_us(round_start));
      idle_rounds = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0 &&
        !has_control_ops_.load(std::memory_order_acquire)) {
      break;
    }
    // Idle backoff: spin briefly (fresh work usually arrives within a few
    // hundred ns), then yield, then park on a 1ms timed wait — the timeout
    // doubles as the lost-wakeup backstop for WakeMerge's unlocked check.
    ++idle_rounds;
    if (idle_rounds < 128) continue;
    if (idle_rounds < 160) {
      std::this_thread::yield();
      continue;
    }
    Clock::time_point park_start;
    if (timed) park_start = Clock::now();
    {
      MutexLock lock(wake_mutex_);
      merge_sleeping_.store(true, std::memory_order_release);
      (void)wake_cv_.WaitFor(lock, std::chrono::milliseconds(1));
      merge_sleeping_.store(false, std::memory_order_release);
    }
    if (timed) idle_us_metric_->Add(elapsed_us(park_start));
  }
}

void ConcurrentMerger::CallAtBarrier(
    std::function<void(std::span<MergeAlgorithm* const>)> fn) {
  CallOnMergeThread([this, &fn] {
    MergeAlgorithm* algorithm = algorithm_;
    fn(std::span<MergeAlgorithm* const>(&algorithm, 1));
  });
}

Status ConcurrentMerger::AdoptOutputView(int stream) {
  Status status = Status::Ok();
  CallOnMergeThread(
      [this, stream, &status] { status = algorithm_->AdoptOutputView(stream); });
  return status;
}

MergeOutputStats ConcurrentMerger::StatsSnapshot() {
  MergeOutputStats stats;
  CallOnMergeThread([this, &stats] { stats = algorithm_->stats(); });
  return stats;
}

bool ConcurrentMerger::Responsive(std::chrono::milliseconds timeout) {
  // The no-op only runs once the merge thread reaches its control-op point
  // between batches; a wedged ProcessBatch or dead thread times out.  An
  // abandoned future is harmless — the parked op completes (or never runs)
  // against a promise this merger still owns.
  std::future<int> done = CallOnMergeThreadAsync([] {});
  return done.wait_for(timeout) == std::future_status::ready;
}

MergerInputSnapshot ConcurrentMerger::InputSnapshot() {
  MergerInputSnapshot snapshot;
  CallOnMergeThread([this, &snapshot] {
    snapshot.per_input = algorithm_->per_input_stats();
    snapshot.active.resize(snapshot.per_input.size());
    for (size_t s = 0; s < snapshot.per_input.size(); ++s) {
      snapshot.active[s] = algorithm_->stream_active(static_cast<int>(s));
    }
    snapshot.totals = algorithm_->stats();
  });
  return snapshot;
}

}  // namespace lmerge
