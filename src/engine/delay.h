// Delay models: turn an element sequence into a TimedStream of arrivals.
//
// These reproduce the arrival processes of Sec. VI:
//  * constant rate — the baseline presentation (5000 elements/sec in the
//    burst/congestion experiments);
//  * fixed lag — Fig. 5's lagging replicas;
//  * bursty — Fig. 8: with small probability the delivery channel stalls for
//    a truncated-normal delay; queued elements then flush in a spike;
//  * congestion — Fig. 9: within given wall-clock windows, per-element
//    delivery slows down (normally distributed extra delay), followed by a
//    natural catch-up spike.

#ifndef LMERGE_ENGINE_DELAY_H_
#define LMERGE_ENGINE_DELAY_H_

#include <vector>

#include "common/random.h"
#include "engine/simulator.h"
#include "stream/element.h"

namespace lmerge {

// Elements arrive back-to-back at `rate` elements/second starting at
// `start_seconds`.
TimedStream ScheduleConstantRate(const ElementSequence& elements, double rate,
                                 double start_seconds = 0.0);

// Shifts every arrival by `lag_seconds`.
TimedStream ScheduleWithLag(TimedStream stream, double lag_seconds);

struct BurstConfig {
  double rate = 5000.0;            // generation rate, elements/sec
  double stall_probability = 0.004;  // per element (paper: 0.3%-0.5%)
  double stall_mean_seconds = 0.020;  // truncated normal mean (paper: 20)
  double stall_stddev_seconds = 0.005;  // (paper: 5)
  uint64_t seed = 1;
};

// Generation is constant-rate, but the delivery channel occasionally stalls;
// elements generated during a stall queue up and flush at the stall's end.
TimedStream ScheduleBursty(const ElementSequence& elements,
                           const BurstConfig& config);

struct CongestionWindow {
  double start_seconds;
  double end_seconds;
  double extra_delay_mean_seconds;    // added per element while congested
  double extra_delay_stddev_seconds;
};

struct CongestionConfig {
  double rate = 5000.0;
  std::vector<CongestionWindow> windows;
  uint64_t seed = 1;
};

// Constant-rate generation; while the channel clock is inside a congestion
// window, each delivery pays an extra normally distributed delay.
TimedStream ScheduleCongestion(const ElementSequence& elements,
                               const CongestionConfig& config);

}  // namespace lmerge

#endif  // LMERGE_ENGINE_DELAY_H_
