#include "engine/delay.h"

#include <algorithm>

namespace lmerge {

TimedStream ScheduleConstantRate(const ElementSequence& elements, double rate,
                                 double start_seconds) {
  TimedStream out;
  out.reserve(elements.size());
  for (size_t i = 0; i < elements.size(); ++i) {
    out.push_back(TimedElement{
        start_seconds + static_cast<double>(i) / rate, elements[i]});
  }
  return out;
}

TimedStream ScheduleWithLag(TimedStream stream, double lag_seconds) {
  for (TimedElement& timed : stream) timed.arrival_seconds += lag_seconds;
  return stream;
}

TimedStream ScheduleBursty(const ElementSequence& elements,
                           const BurstConfig& config) {
  Rng rng(config.seed);
  TimedStream out;
  out.reserve(elements.size());
  double stall_until = 0.0;
  for (size_t i = 0; i < elements.size(); ++i) {
    const double generated = static_cast<double>(i) / config.rate;
    const double delivered = std::max(generated, stall_until);
    out.push_back(TimedElement{delivered, elements[i]});
    if (rng.Bernoulli(config.stall_probability)) {
      const double stall = rng.TruncatedNormal(
          config.stall_mean_seconds, config.stall_stddev_seconds, 0.0,
          config.stall_mean_seconds + 4 * config.stall_stddev_seconds);
      stall_until = delivered + stall;
    }
  }
  return out;
}

TimedStream ScheduleCongestion(const ElementSequence& elements,
                               const CongestionConfig& config) {
  Rng rng(config.seed);
  TimedStream out;
  out.reserve(elements.size());
  double channel_free = 0.0;
  for (size_t i = 0; i < elements.size(); ++i) {
    const double generated = static_cast<double>(i) / config.rate;
    double delivered = std::max(generated, channel_free);
    for (const CongestionWindow& window : config.windows) {
      if (delivered >= window.start_seconds &&
          delivered < window.end_seconds) {
        const double extra =
            std::max(0.0, rng.Normal(window.extra_delay_mean_seconds,
                                     window.extra_delay_stddev_seconds));
        delivered += extra;
        break;
      }
    }
    channel_free = delivered;
    out.push_back(TimedElement{delivered, elements[i]});
  }
  return out;
}

}  // namespace lmerge
