// Concurrent ingestion: one producer thread per input stream delivering
// into a shared, internally synchronized LMerge.
//
// The deterministic simulator (engine/simulator.h) is what the figure
// harnesses use; this module models the deployment reality instead — each
// replica of a query arrives on its own network/session thread ("identical
// copies of a query running on machines with independent processor or
// network resources", Sec. II-2).  Delivery order across streams is then
// genuinely nondeterministic; the merge must produce a stream equivalent to
// the logical input regardless (the concurrency stress tests assert this
// over many runs).

#ifndef LMERGE_ENGINE_CONCURRENT_H_
#define LMERGE_ENGINE_CONCURRENT_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/merge_algorithm.h"
#include "stream/element.h"

namespace lmerge {

class ConcurrentMerger {
 public:
  // The merger does not own `algorithm`; its sink must tolerate being
  // invoked under the merger's lock.
  explicit ConcurrentMerger(MergeAlgorithm* algorithm)
      : algorithm_(algorithm) {
    LM_CHECK(algorithm != nullptr);
  }

  // Spawns one thread per input, each delivering its sequence in order
  // (cross-stream interleaving is up to the scheduler), and joins them.
  // Aborts on delivery errors (inputs are trusted replicas).
  void Run(const std::vector<ElementSequence>& inputs);

  // Thread-safe single-element delivery (for callers managing their own
  // threads).
  void Deliver(int stream, const StreamElement& element);

  // Like Deliver, but reports failure instead of aborting — the right entry
  // point for *untrusted* inputs (network publishers): a malformed element
  // tears down one session, not the process.
  Status TryDeliver(int stream, const StreamElement& element);

  // Thread-safe runtime stream registry (the paper's join/leave hooks,
  // Sec. V-B/C), synchronized with in-flight deliveries.
  int AddStream();
  void RemoveStream(int stream);

  // The algorithm's output stable point, read under the delivery lock.
  Timestamp max_stable() const;

  int64_t delivered_count() const { return delivered_; }

 private:
  MergeAlgorithm* algorithm_;
  mutable std::mutex mutex_;
  int64_t delivered_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_CONCURRENT_H_
