// Concurrent ingestion: one producer thread per input stream delivering
// into a batched, single-threaded LMerge core.
//
// The deterministic simulator (engine/simulator.h) is what the figure
// harnesses use; this module models the deployment reality instead — each
// replica of a query arrives on its own network/session thread ("identical
// copies of a query running on machines with independent processor or
// network resources", Sec. II-2).
//
// Architecture: every input stream owns a bounded SPSC ring buffer; the
// producer side (Deliver/TryDeliver/TryDeliverBatch) validates and enqueues
// without ever touching merge state, and a single internal merge thread
// drains the rings round-robin, handing each drained chunk to
// MergeAlgorithm::ProcessBatch.  A full ring blocks its producer
// (backpressure), bounding memory.  AddStream/RemoveStream are control
// messages executed on the merge thread between batches, so join/leave is
// ordered against in-flight deliveries; max_stable/delivered_count are
// atomics.  Because exactly one thread runs the algorithm, delivery order
// across streams is nondeterministic but each stream's order is preserved —
// the same contract the old global-mutex design gave, minus the lock
// convoy.

#ifndef LMERGE_ENGINE_CONCURRENT_H_
#define LMERGE_ENGINE_CONCURRENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/merge_algorithm.h"
#include "engine/merger.h"
#include "engine/spsc_ring.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "stream/element.h"

namespace lmerge {

struct ConcurrentMergerOptions {
  // Per-input ring capacity in elements (rounded up to a power of two).  A
  // full ring blocks the producer until the merge thread catches up.
  size_t ring_capacity = 4096;
  // Upper bound on elements handed to ProcessBatch per drain of one ring.
  size_t max_batch = 1024;
  // Invoked on the merge thread after every processed batch; embedders use
  // it to flush per-batch output buffers.
  std::function<void()> after_batch;
  // Instrument-name scope: metrics register as "<scope>.batches",
  // "<scope>.busy_us", ... — "engine" for the process-wide single merger,
  // "merge.shard.N" for a PartitionedMerger's per-shard mergers so skew is
  // visible per shard (docs/OBSERVABILITY.md).
  std::string metrics_scope = "engine";
};

class ConcurrentMerger : public Merger {
 public:
  // The merger does not own `algorithm`.  The algorithm and its sink are
  // only ever touched by the internal merge thread; the sink must therefore
  // tolerate running on that thread.  Starts the merge thread immediately.
  explicit ConcurrentMerger(MergeAlgorithm* algorithm,
                            ConcurrentMergerOptions options = {});

  // Drains all enqueued work, then stops and joins the merge thread.
  ~ConcurrentMerger() override;

  ConcurrentMerger(const ConcurrentMerger&) = delete;
  ConcurrentMerger& operator=(const ConcurrentMerger&) = delete;

  // Thread-safe single-element delivery for trusted callers managing their
  // own threads; blocks while the stream's ring is full.  At most one
  // thread may deliver to a given stream at a time (SPSC).
  void Deliver(int stream, const StreamElement& element) override;

  // Like Deliver, but validates first and reports failure instead of
  // aborting — the entry point for *untrusted* inputs (network publishers):
  // a malformed element tears down one session, not the process.
  // Enqueue-only: Ok means accepted, not yet merged (see WaitIdle).
  Status TryDeliver(int stream, const StreamElement& element) override;

  // Batched TryDeliver: validates and enqueues the elements in order,
  // moving them out of `batch`.  On a validation failure the elements
  // before the failing one stay enqueued (same prefix semantics as
  // element-wise delivery) and the error is returned.
  Status TryDeliverBatch(int stream, std::span<StreamElement> batch) override;

  // Stamped TryDeliverBatch for the latency pipeline: on success, the
  // batch's ingest stamp rides a per-stream side ring keyed by element
  // counts, so the merge thread can attribute drain batches back to their
  // arrival times without widening StreamElement.  A full stamp ring drops
  // the stamp (a lost latency sample), never the elements.
  Status TryDeliverBatch(int stream, std::span<StreamElement> batch,
                         const obs::IngestStamp& stamp) override;

  // Trusted batched delivery: enqueues every element of `batch` (moved out)
  // without re-validating.  The PartitionedMerger routing path uses this
  // after validating a publisher batch once up front, so split sub-batches
  // keep the exact prefix-on-error semantics without paying validation per
  // shard.
  void DeliverBatch(int stream, std::span<StreamElement> batch);

  // Stamped trusted delivery, same contract plus the stamp side-channel.
  void DeliverBatch(int stream, std::span<StreamElement> batch,
                    const obs::IngestStamp& stamp);

  // Thread-safe runtime stream registry (the paper's join/leave hooks,
  // Sec. V-B/C).  Both block until the merge thread has applied the change;
  // RemoveStream first drains everything already enqueued for the stream,
  // so its elements are never dropped.
  int AddStream() override;
  void RemoveStream(int stream) override;

  // Runs `fn` on the merge thread between batches and blocks until it
  // returns — the race-free way to snapshot algorithm state (stats, state
  // bytes) while deliveries are in flight.  `fn` must not call back into
  // this merger.
  void CallOnMergeThread(std::function<void()> fn);

  // Like CallOnMergeThread but returns immediately; waiting on the future
  // observes completion.  The PartitionedMerger barrier posts one parked fn
  // per shard this way — a blocking post per shard would deadlock the
  // barrier against itself.
  std::future<int> CallOnMergeThreadAsync(std::function<void()> fn);

  // Blocks until every element enqueued so far has been merged.  On return,
  // sink output and algorithm state reflect all prior deliveries
  // (happens-before is established for the caller).
  void WaitIdle() override;

  // The merged output's stable point: a possibly slightly stale snapshot
  // while deliveries are in flight, exact after WaitIdle().
  Timestamp max_stable() const override {
    return max_stable_.load(std::memory_order_acquire);
  }

  int64_t delivered_count() const override {
    return delivered_.load(std::memory_order_acquire);
  }

  // Elements enqueued but not yet merged; the partitioned merger sums this
  // across shards for the "engine.pending" gauge.
  int64_t pending_count() const {
    return pending_.load(std::memory_order_acquire);
  }

  // First delivery error the merge thread hit asynchronously (validation
  // misses only mis-sequenced control flow, e.g. delivery after shutdown);
  // Ok when none.  Once set, subsequent batches are discarded.
  Status error() const override;

  // Cheap poisoned probe (no lock): true once an asynchronous error is
  // recorded.  The partitioned router prechecks this per delivery.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  int shard_count() const override { return 1; }
  AlgorithmCase algorithm_case() const override {
    return algorithm_->algorithm_case();
  }

  // Merger barrier/snapshot surface; all run `fn`/the copy on the merge
  // thread via CallOnMergeThread (span of exactly one algorithm).
  void CallAtBarrier(
      std::function<void(std::span<MergeAlgorithm* const>)> fn) override;
  Status AdoptOutputView(int stream) override;
  MergeOutputStats StatsSnapshot() override;
  MergerInputSnapshot InputSnapshot() override;

  // Exports the algorithm's stats (on the merge thread, race-free) plus the
  // engine's own gauges into the global registry and returns its snapshot.
  // Safe to call from any thread while deliveries are in flight.
  obs::MetricsSnapshot MetricsSnapshot() override;

  // /readyz probe: posts a no-op control op and waits up to `timeout` for
  // the merge thread to run it.  False means the thread is wedged or dead.
  bool Responsive(std::chrono::milliseconds timeout) override;

 private:
  // An ingest stamp covering the elements enqueued in slot positions
  // [begin_count, end_count) — cumulative counts, so the merge thread can
  // match stamps to drain batches without the stamp living inside
  // StreamElement.
  struct BatchStamp {
    uint64_t begin_count = 0;
    uint64_t end_count = 0;
    obs::IngestStamp stamp;
  };

  struct InputSlot {
    explicit InputSlot(size_t capacity)
        : ring(capacity), stamp_ring(kStampRingCapacity) {}
    SpscRing<StreamElement> ring;
    // Latency side-channel beside the element ring: one entry per stamped
    // publisher batch.  Much smaller than the element ring — overflow drops
    // the stamp (a lost sample), never blocks the producer.
    SpscRing<BatchStamp> stamp_ring;
    // Cumulative elements ever enqueued (producer-thread-only) / drained
    // (merge-thread-only); their difference in stamp ranges is the matching
    // key, so neither needs to be atomic.
    uint64_t enqueued_count = 0;
    uint64_t drained_count = 0;
    std::atomic<bool> active{true};
    // Backpressure parking for the producer when the ring is full.  The
    // mutex guards no data (ring and flag are atomic); it only sequences
    // the park/notify handshake.
    std::atomic<bool> producer_waiting{false};
    Mutex wait_mutex;
    CondVar wait_cv;
  };

  struct ControlOp {
    enum Kind { kAddStream, kRemoveStream, kCall } kind = kAddStream;
    int stream = -1;
    std::function<void()> fn;
    std::promise<int> result;
  };

  // Producer side.
  Status Precheck(int stream, const StreamElement& element) const;
  void EnqueueBlocking(int stream, StreamElement element);
  void PushStamp(int stream, size_t count, const obs::IngestStamp& stamp);
  void WakeMerge();

  // Merge-thread side.
  void MergeLoop();
  size_t DrainRing(int stream) LM_HOT_PATH;
  size_t ProcessControlOps();
  void RecordError(const Status& status);

  // The slot vector is append-only and pre-reserved to kMaxStreams so
  // producers may index it without locks while AddStream appends.
  static constexpr size_t kMaxStreams = 1024;
  // Stamp entries per input: one per publisher batch in flight, so far
  // fewer than ring_capacity elements ever need.
  static constexpr size_t kStampRingCapacity = 256;

  MergeAlgorithm* algorithm_;
  ConcurrentMergerOptions options_;

  std::vector<std::unique_ptr<InputSlot>> slots_;
  std::atomic<int> slot_count_{0};

  std::atomic<Timestamp> max_stable_;
  std::atomic<int64_t> delivered_{0};
  // Elements enqueued but not yet merged (incremented before the push so it
  // never transiently under-counts).
  std::atomic<int64_t> pending_{0};
  std::atomic<bool> poisoned_{false};
  std::atomic<bool> stop_{false};

  mutable Mutex control_mutex_;
  std::deque<ControlOp> control_ops_ LM_GUARDED_BY(control_mutex_);
  std::atomic<bool> has_control_ops_{false};
  Status error_ LM_GUARDED_BY(control_mutex_);

  // WaitIdle parking (notified by the merge thread when pending_ hits 0;
  // the mutex guards no data, pending_ is atomic).
  Mutex idle_mutex_;
  CondVar idle_cv_;

  // Merge-thread parking when idle.
  Mutex wake_mutex_;
  CondVar wake_cv_;
  std::atomic<bool> merge_sleeping_{false};

  std::vector<StreamElement> scratch_;  // merge-thread drain buffer

  // Cached instrument handles (obs/metrics.h); shared by name across
  // mergers, so values aggregate process-wide.
  obs::Counter* stalls_metric_;
  obs::Counter* batches_metric_;
  obs::Counter* busy_us_metric_;
  obs::Counter* idle_us_metric_;
  obs::Histogram* batch_size_metric_;
  obs::Histogram* ring_occupancy_metric_;
  // Latency-pipeline stages (unscoped names: shards aggregate process-wide).
  obs::Histogram* rx_to_merge_metric_;
  obs::Histogram* merge_us_metric_;

  std::thread merge_thread_;
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_CONCURRENT_H_
