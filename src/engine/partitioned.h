// Partitioned parallel merge: shard the LMerge core N ways by
// (payload, Vs) key hash and recombine the shard outputs behind a
// min-frontier stable-point aggregator.
//
// Why this is sound (Sec. III-E / IV): every insert(p, Vs, Ve) and its
// adjusts carry the same (p, Vs) key, so hash-routing by that key sends an
// event and ALL of its revisions to one shard.  The restriction of a valid
// physical stream to a key subset is itself a valid physical stream for the
// restricted TDB (dropping elements never breaks the stable()-ordering
// guarantees, which only constrain elements that are present), so each
// shard runs an unmodified single-threaded merge algorithm over an ordinary
// input.  stable(Vc) constrains every key, so stables are broadcast to all
// shards.
//
// Output recombination: each shard's merged output is a valid physical
// stream for its key subset; interleaving them element-wise preserves
// per-shard order, so the union is a valid presentation of the full merged
// TDB *except* for stable() elements — shard i's stable(Vc) only promises
// quiescence of shard i's keys.  The aggregator therefore tracks a
// per-shard stable frontier (running max of that shard's emitted stables),
// swallows shard stables, and emits stable(g) whenever the global minimum g
// across frontiers advances.  Because each shard emits its elements before
// the stable that covers them and the aggregator drains per-shard FIFO
// rings, every element with Vs < g from every shard has already been
// forwarded when stable(g) goes out — the output is a valid physical
// stream, and its reconstitution at every stable point equals the
// single-threaded merge's (tests/core/batch_equivalence_test.cc proves
// this per variant/seed/shard-count).
//
// Control operations (AddStream/RemoveStream/checkpoint cuts) become
// fan-out barriers: every shard parks between two batches at once, the
// aggregator is drained, and the caller observes one consistent cut across
// all shard algorithms (CallAtBarrier).

#ifndef LMERGE_ENGINE_PARTITIONED_H_
#define LMERGE_ENGINE_PARTITIONED_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/merge_algorithm.h"
#include "engine/concurrent.h"
#include "engine/merger.h"
#include "engine/spsc_ring.h"
#include "obs/latency.h"
#include "obs/metrics.h"
#include "stream/element.h"
#include "stream/sink.h"

namespace lmerge {

struct PartitionedMergerOptions {
  // Number of shards (merge threads).  Must be >= 1; with 1 shard the
  // partitioned merger still routes through the aggregator — callers that
  // want the byte-identical single-threaded path construct a
  // ConcurrentMerger instead (MergeServer does this for --merge-threads=1).
  int shards = 2;
  // Per-input ring capacity of each shard's ConcurrentMerger.
  size_t ring_capacity = 4096;
  // Upper bound on elements per ProcessBatch drain inside each shard.
  size_t max_batch = 1024;
  // Capacity of each shard's output ring (shard merge thread -> aggregator).
  // A full output ring blocks the shard's merge thread (backpressure),
  // bounding recombination memory.
  size_t out_ring_capacity = 4096;
  // Invoked on the aggregator thread after each forwarded chunk; embedders
  // use it to flush per-batch output buffers (the partitioned counterpart
  // of ConcurrentMergerOptions::after_batch).
  std::function<void()> after_batch;
  // Test seam: overrides shard routing for insert/adjust elements.  Must be
  // a pure function of the element (an event and its adjusts must map to
  // the same shard).  The skew stress test routes everything to shard 0
  // with this.
  std::function<int(const StreamElement&, int num_shards)> route_override;
};

// Creates the shard algorithm for `shard`, emitting into `sink`.  Called
// once per shard from the constructor; every shard must get the same
// variant/stream-count configuration (checkpoint restore loads each shard's
// saved state here).
using ShardAlgorithmFactory =
    std::function<std::unique_ptr<MergeAlgorithm>(int shard,
                                                  ElementSink* sink)>;

class PartitionedMerger : public Merger {
 public:
  // `sink` receives the recombined output on the aggregator thread (the
  // same single-threaded sink contract ConcurrentMerger gives).  Starts
  // `options.shards` merge threads plus the aggregator thread immediately.
  PartitionedMerger(ShardAlgorithmFactory factory, ElementSink* sink,
                    PartitionedMergerOptions options = {});

  // Drains all enqueued work through every shard and the aggregator, then
  // stops and joins all threads.
  ~PartitionedMerger() override;

  PartitionedMerger(const PartitionedMerger&) = delete;
  PartitionedMerger& operator=(const PartitionedMerger&) = delete;

  // The shard an insert/adjust element routes to: a mix of the payload's
  // cached row hash (no rehashing per element) and Vs, so an event and all
  // of its revisions land on one shard.  Deterministic across processes
  // (row hashing is unseeded), so checkpoint restore reproduces routing.
  static int RouteShard(const StreamElement& element, int num_shards) {
    const uint64_t key = HashCombine(
        element.payload().hash(), static_cast<uint64_t>(element.vs()));
    return static_cast<int>(key % static_cast<uint64_t>(num_shards));
  }

  // Merger delivery surface.  Stables are broadcast to every shard;
  // inserts/adjusts route by key hash.  SPSC contract per stream as usual.
  void Deliver(int stream, const StreamElement& element) override;
  Status TryDeliver(int stream, const StreamElement& element) override;
  Status TryDeliverBatch(int stream, std::span<StreamElement> batch) override;

  // Stamped delivery: the batch's ingest stamp follows each routed
  // sub-batch into its shard merger, and from there across the aggregator
  // to the recombined output (see the stamp relay comment on
  // EnqueueOutput).
  Status TryDeliverBatch(int stream, std::span<StreamElement> batch,
                         const obs::IngestStamp& stamp) override;

  // Fan-out registry changes, serialized so every shard applies them in the
  // same order and the per-shard stream ids stay aligned.
  int AddStream() override;
  void RemoveStream(int stream) override;

  // Blocks until every element enqueued so far has passed through its shard
  // AND the aggregator has forwarded all resulting output (stable emissions
  // included).
  void WaitIdle() override;

  // The recombined output's stable point: min across shard frontiers.
  Timestamp max_stable() const override {
    return output_stable_.load(std::memory_order_acquire);
  }

  int64_t delivered_count() const override {
    return delivered_.load(std::memory_order_acquire);
  }

  // First asynchronous error any shard hit; Ok when none.
  Status error() const override;

  int shard_count() const override { return num_shards_; }
  AlgorithmCase algorithm_case() const override {
    return algorithms_[0]->algorithm_case();
  }

  // Parks every shard's merge thread between two batches, drains the
  // aggregator to empty, then runs `fn` on the caller thread over the span
  // of all shard algorithms — one consistent cut across the whole
  // partitioned state (see merger.h).
  void CallAtBarrier(
      std::function<void(std::span<MergeAlgorithm* const>)> fn) override;

  Status AdoptOutputView(int stream) override;
  MergeOutputStats StatsSnapshot() override;
  MergerInputSnapshot InputSnapshot() override;
  obs::MetricsSnapshot MetricsSnapshot() override;

  // /readyz probe: pings every shard's merge thread against one shared
  // deadline.  A wedged aggregator is caught transitively — its full output
  // rings block the shards mid-batch, so their pings time out too.
  bool Responsive(std::chrono::milliseconds timeout) override;

  // Output stables emitted by the aggregator (shard-emitted stables are
  // swallowed by the min-frontier aggregation and never reach the output).
  int64_t stables_out() const {
    return stables_out_.load(std::memory_order_acquire);
  }

 private:
  // Shard-side output sink: pushes every element the shard algorithm emits
  // into the shard's output ring (blocking when full), running on that
  // shard's merge thread.
  class ShardOutput : public ElementSink {
   public:
    void OnElement(const StreamElement& element) override {
      parent_->EnqueueOutput(shard_, element);
    }

   private:
    friend class PartitionedMerger;
    PartitionedMerger* parent_ = nullptr;
    int shard_ = 0;
  };

  // Stamp relay entry: "output elements from cumulative position
  // `begin_count` on carry `stamp`, until a later entry supersedes it."
  // Pushed by the shard merge thread only when its thread-local stamp
  // changes, so the ring stays tiny relative to the element ring.
  struct OutStamp {
    uint64_t begin_count = 0;
    obs::IngestStamp stamp;
  };

  struct Shard {
    explicit Shard(size_t out_capacity)
        : out_ring(out_capacity), out_stamp_ring(kOutStampRingCapacity) {}
    ShardOutput sink;
    std::unique_ptr<MergeAlgorithm> algorithm;  // fed only by `merger`
    std::unique_ptr<ConcurrentMerger> merger;
    SpscRing<StreamElement> out_ring;  // shard merge thread -> aggregator
    // Latency side-channel beside the output ring (shard merge thread ->
    // aggregator); overflow drops stamps, never elements.
    SpscRing<OutStamp> out_stamp_ring;
    // Cumulative outputs enqueued (shard-merge-thread-only) / drained
    // (aggregator-only) — the matching key for OutStamp ranges.
    uint64_t out_enqueued = 0;
    uint64_t out_drained = 0;
    // Last stamp pushed into the relay (shard-merge-thread-only): push only
    // on change.
    obs::IngestStamp out_last_stamp;
    // The stamp in force for the next drained element (aggregator-only).
    obs::IngestStamp agg_stamp;
    // Parking for the shard merge thread when the output ring is full
    // (mirrors ConcurrentMerger::InputSlot backpressure; the mutex guards
    // no data, it only sequences the park/notify handshake).
    std::atomic<bool> producer_waiting{false};
    Mutex wait_mutex;
    CondVar wait_cv;
    // The shard's stable frontier: running max of stables it emitted.
    // Aggregator-thread-only once running (read under quiescence by
    // CallAtBarrier callers).
    Timestamp frontier = kMinTimestamp;
    obs::Counter* elements_metric = nullptr;       // merge.shard.N.elements
    obs::Histogram* routed_batch_metric = nullptr;  // merge.shard.N.routed_batch
  };

  // Producer side.
  Status Precheck(int stream, const StreamElement& element) const;
  bool AnyShardPoisoned() const;
  // Splits `batch` per shard (stables appended to every shard) and hands
  // the sub-batches to the shard mergers' trusted DeliverBatch, attaching
  // `stamp` to each sub-batch (empty = unstamped).
  void RouteBatch(int stream, std::span<StreamElement> batch,
                  const obs::IngestStamp& stamp = obs::IngestStamp());

  // Shard-thread side.
  void EnqueueOutput(int shard, const StreamElement& element) LM_HOT_PATH;
  void WakeAggregator();

  // Aggregator-thread side.
  void AggregatorLoop() LM_HOT_PATH;
  size_t DrainShardOutput(int shard, std::vector<StreamElement>* scratch)
      LM_HOT_PATH;
  void ForwardElement(int shard, StreamElement& element) LM_HOT_PATH;

  int num_shards_ = 0;
  PartitionedMergerOptions options_;
  ElementSink* sink_;  // aggregator-thread-only

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<MergeAlgorithm*> algorithms_;  // shards_[i]->algorithm.get()

  // Producer-visible stream registry (mirrors every shard's; the slot
  // vector is append-only and pre-reserved so producers index it without
  // locks while AddStream appends).
  static constexpr size_t kMaxStreams = 1024;
  // Stamp relay entries per shard (see OutStamp).
  static constexpr size_t kOutStampRingCapacity = 256;
  std::vector<std::unique_ptr<std::atomic<bool>>> active_;
  std::atomic<int> stream_count_{0};

  std::atomic<Timestamp> output_stable_{kMinTimestamp};
  std::atomic<int64_t> delivered_{0};
  std::atomic<int64_t> stables_out_{0};
  // Elements emitted by shards but not yet forwarded by the aggregator
  // (incremented before the output-ring push, decremented after the
  // element's full effect — stable emission included — is applied).
  std::atomic<int64_t> out_pending_{0};
  std::atomic<bool> agg_stop_{false};

  // Serializes AddStream/RemoveStream/CallAtBarrier so all shards apply
  // registry changes in one global order and barriers never interleave.
  // Ordered after MergeServer::mutex_ and before each shard
  // ConcurrentMerger::control_mutex_ (DESIGN.md Sec. 7).
  mutable Mutex control_mutex_;

  // Barrier rendezvous: shards park on it, CallAtBarrier (which holds
  // control_mutex_) waits and releases — hence the declared order.
  Mutex barrier_mutex_ LM_ACQUIRED_AFTER(control_mutex_);
  CondVar barrier_cv_;
  std::atomic<int> barrier_arrived_{0};
  std::atomic<bool> barrier_release_{false};

  // WaitIdle/barrier parking on out_pending_ == 0 (guards no data; nests
  // under control_mutex_ inside CallAtBarrier).
  Mutex out_idle_mutex_ LM_ACQUIRED_AFTER(control_mutex_);
  CondVar out_idle_cv_;

  // Aggregator parking when idle (leaf; guards no data).
  Mutex agg_wake_mutex_;
  CondVar agg_wake_cv_;
  std::atomic<bool> agg_sleeping_{false};

  obs::Counter* agg_batches_metric_;
  obs::Counter* agg_stalls_metric_;

  std::thread agg_thread_;
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_PARTITIONED_H_
