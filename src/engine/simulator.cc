#include "engine/simulator.h"

#include <chrono>

#include "common/check.h"

namespace lmerge {

void Simulator::AddInput(Operator* op, int port, TimedStream elements) {
  LM_CHECK(op != nullptr);
  for (size_t i = 1; i < elements.size(); ++i) {
    LM_DCHECK(elements[i - 1].arrival_seconds <= elements[i].arrival_seconds);
  }
  inputs_.push_back(Input{op, port, std::move(elements), 0});
}

double Simulator::Run() {
  const auto wall_start = std::chrono::steady_clock::now();
  // K-way merge by arrival time; k is small (the number of input streams),
  // so a linear scan per step is cheap and avoids heap churn.
  while (true) {
    Input* best = nullptr;
    for (Input& input : inputs_) {
      if (input.next >= input.elements.size()) continue;
      if (best == nullptr ||
          input.elements[input.next].arrival_seconds <
              best->elements[best->next].arrival_seconds) {
        best = &input;
      }
    }
    if (best == nullptr) break;
    const TimedElement& timed = best->elements[best->next];
    now_ = timed.arrival_seconds;
    best->op->Consume(best->port, timed.element);
    ++best->next;
    ++delivered_;
  }
  const auto wall_end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(wall_end - wall_start).count();
}

}  // namespace lmerge
