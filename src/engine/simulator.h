// Virtual-time simulation of stream arrival (Sec. VI-E's burst, congestion,
// and lag experiments, made deterministic).
//
// Each input is an element sequence with precomputed *arrival* times in
// seconds (delay models: engine/delay.h).  The simulator performs a k-way
// merge by arrival time and delivers each element synchronously into its
// target operator port; recorders sample the virtual clock to build
// throughput-over-time series and per-element latencies.
//
// By convention, application timestamps (Vs/Ve) are in microseconds and the
// virtual clock is in seconds; kTicksPerSecond converts.

#ifndef LMERGE_ENGINE_SIMULATOR_H_
#define LMERGE_ENGINE_SIMULATOR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/timestamp.h"
#include "operators/operator.h"
#include "stream/element.h"

namespace lmerge {

inline constexpr double kTicksPerSecond = 1e6;  // app time is in microseconds

struct TimedElement {
  double arrival_seconds;
  StreamElement element;
};

using TimedStream = std::vector<TimedElement>;

class Simulator {
 public:
  // Registers `elements` (sorted by arrival) for delivery into op:port.
  void AddInput(Operator* op, int port, TimedStream elements);

  // Virtual clock: arrival time of the element being processed.
  double now() const { return now_; }

  // Delivers everything in global arrival order.  Returns wall-clock seconds
  // spent processing (the throughput measure for rate benchmarks).
  double Run();

  int64_t delivered_count() const { return delivered_; }

 private:
  struct Input {
    Operator* op;
    int port;
    TimedStream elements;
    size_t next = 0;
  };

  std::vector<Input> inputs_;
  double now_ = 0;
  int64_t delivered_ = 0;
};

// Builds a throughput-over-virtual-time series: counts insert elements per
// `bucket_seconds` bucket (Figs. 8 and 9 plot these series).
class ThroughputRecorder : public ElementSink {
 public:
  ThroughputRecorder(const Simulator* simulator, double bucket_seconds)
      : simulator_(simulator), bucket_seconds_(bucket_seconds) {}

  void OnElement(const StreamElement& element) override {
    if (!element.is_insert()) return;
    const auto bucket = static_cast<size_t>(simulator_->now() /
                                            bucket_seconds_);
    if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
  }

  // Events per second in each bucket.
  std::vector<double> RatePerSecond() const {
    std::vector<double> rates;
    rates.reserve(buckets_.size());
    for (const int64_t count : buckets_) {
      rates.push_back(static_cast<double>(count) / bucket_seconds_);
    }
    return rates;
  }

  const std::vector<int64_t>& buckets() const { return buckets_; }

 private:
  const Simulator* simulator_;
  double bucket_seconds_;
  std::vector<int64_t> buckets_;
};

// Samples per-insert latency: virtual arrival time at the sink minus the
// event's application start time (Sec. VI-D's latency comparison).
class LatencyRecorder : public ElementSink {
 public:
  explicit LatencyRecorder(const Simulator* simulator)
      : simulator_(simulator) {}

  void OnElement(const StreamElement& element) override {
    if (!element.is_insert()) return;
    const double app_seconds =
        static_cast<double>(element.vs()) / kTicksPerSecond;
    total_ += simulator_->now() - app_seconds;
    ++count_;
  }

  double MeanSeconds() const {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }
  int64_t count() const { return count_; }

 private:
  const Simulator* simulator_;
  double total_ = 0;
  int64_t count_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_ENGINE_SIMULATOR_H_
