// ElementSink: where stream elements go.
//
// LMerge algorithms and substrate operators emit their output through this
// interface.  CollectingSink gathers elements for tests; ValidatingSink wraps
// another sink and re-validates the stream against declared properties.

#ifndef LMERGE_STREAM_SINK_H_
#define LMERGE_STREAM_SINK_H_

#include <functional>
#include <vector>

#include "common/check.h"
#include "stream/element.h"
#include "stream/validate.h"

namespace lmerge {

class ElementSink {
 public:
  virtual ~ElementSink() = default;
  virtual void OnElement(const StreamElement& element) = 0;
};

// Discards everything; useful for pure-throughput benchmarks.
class NullSink : public ElementSink {
 public:
  void OnElement(const StreamElement& element) override { (void)element; }
};

// Appends every element to a vector.
class CollectingSink : public ElementSink {
 public:
  void OnElement(const StreamElement& element) override {
    elements_.push_back(element);
  }

  const ElementSequence& elements() const { return elements_; }
  ElementSequence TakeElements() { return std::move(elements_); }
  void Clear() { elements_.clear(); }

 private:
  ElementSequence elements_;
};

// Validates each element (LM_CHECK on violation) and forwards to `next`
// (which may be null).  Used in tests to assert that an operator's output is
// a well-formed physical stream with the properties it claims.
class ValidatingSink : public ElementSink {
 public:
  explicit ValidatingSink(StreamProperties properties,
                          ElementSink* next = nullptr)
      : validator_(properties), next_(next) {}

  void OnElement(const StreamElement& element) override {
    const Status status = validator_.Consume(element);
    LM_CHECK_MSG(status.ok(), "invalid output element %s: %s",
                 element.ToString().c_str(), status.ToString().c_str());
    if (next_ != nullptr) next_->OnElement(element);
  }

  const StreamValidator& validator() const { return validator_; }

 private:
  StreamValidator validator_;
  ElementSink* next_;
};

// Invokes a callback per element; adapts lambdas (subscriber clients,
// network fan-out) to the sink interface without a named subclass.
class CallbackSink : public ElementSink {
 public:
  using Callback = std::function<void(const StreamElement&)>;

  explicit CallbackSink(Callback callback)
      : callback_(std::move(callback)) {
    LM_CHECK(callback_ != nullptr);
  }

  void OnElement(const StreamElement& element) override {
    callback_(element);
  }

 private:
  Callback callback_;
};

// Counts elements by kind; the "output size" metric of Sec. VI-B.
class CountingSink : public ElementSink {
 public:
  explicit CountingSink(ElementSink* next = nullptr) : next_(next) {}

  void OnElement(const StreamElement& element) override {
    switch (element.kind()) {
      case ElementKind::kInsert:
        ++inserts_;
        break;
      case ElementKind::kAdjust:
        ++adjusts_;
        break;
      case ElementKind::kStable:
        ++stables_;
        break;
    }
    if (next_ != nullptr) next_->OnElement(element);
  }

  int64_t inserts() const { return inserts_; }
  int64_t adjusts() const { return adjusts_; }
  int64_t stables() const { return stables_; }
  int64_t total() const { return inserts_ + adjusts_ + stables_; }

 private:
  int64_t inserts_ = 0;
  int64_t adjusts_ = 0;
  int64_t stables_ = 0;
  ElementSink* next_;
};

}  // namespace lmerge

#endif  // LMERGE_STREAM_SINK_H_
