#include "stream/element_serde.h"

namespace lmerge {

void EncodeElement(const StreamElement& element, Encoder* encoder) {
  encoder->WriteU8(static_cast<uint8_t>(element.kind()));
  switch (element.kind()) {
    case ElementKind::kInsert:
      encoder->WriteRow(element.payload());
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kAdjust:
      encoder->WriteRow(element.payload());
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.v_old());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kStable:
      encoder->WriteI64(element.stable_time());
      break;
  }
}

Status DecodeElement(Decoder* decoder, StreamElement* element) {
  uint8_t tag = 0;
  Status status = decoder->ReadU8(&tag);
  if (!status.ok()) return status;
  switch (static_cast<ElementKind>(tag)) {
    case ElementKind::kInsert: {
      Row payload;
      int64_t vs = 0;
      int64_t ve = 0;
      if (!(status = decoder->ReadRow(&payload)).ok()) return status;
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Insert(std::move(payload), vs, ve);
      return Status::Ok();
    }
    case ElementKind::kAdjust: {
      Row payload;
      int64_t vs = 0;
      int64_t v_old = 0;
      int64_t ve = 0;
      if (!(status = decoder->ReadRow(&payload)).ok()) return status;
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&v_old)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Adjust(std::move(payload), vs, v_old, ve);
      return Status::Ok();
    }
    case ElementKind::kStable: {
      int64_t t = 0;
      if (!(status = decoder->ReadI64(&t)).ok()) return status;
      *element = StreamElement::Stable(t);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown element tag " +
                                 std::to_string(tag));
}

void EncodeSequence(const ElementSequence& elements, Encoder* encoder) {
  // Floor estimate (tag + three i64 per element, payload excluded): large
  // batches reach their final buffer size in O(1) reallocations instead of
  // O(log n) doubling steps from empty.
  encoder->Reserve(4 + elements.size() * 25);
  encoder->WriteU32(static_cast<uint32_t>(elements.size()));
  for (const StreamElement& e : elements) EncodeElement(e, encoder);
}

Status DecodeSequence(Decoder* decoder, ElementSequence* elements) {
  uint32_t count = 0;
  Status status = decoder->ReadU32(&count);
  if (!status.ok()) return status;
  if (count > decoder->remaining()) {
    return Status::InvalidArgument("sequence length exceeds buffer");
  }
  elements->clear();
  elements->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StreamElement element;
    status = DecodeElement(decoder, &element);
    if (!status.ok()) return status;
    elements->push_back(std::move(element));
  }
  return Status::Ok();
}

std::string SerializeSequence(const ElementSequence& elements) {
  Encoder encoder;
  EncodeSequence(elements, &encoder);
  return encoder.TakeBytes();
}

Status DeserializeSequence(const std::string& bytes,
                           ElementSequence* elements) {
  Decoder decoder(bytes);
  Status status = DecodeSequence(&decoder, elements);
  if (!status.ok()) return status;
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after sequence");
  }
  return Status::Ok();
}

}  // namespace lmerge
