#include "stream/element_serde.h"

#include "obs/metrics.h"

namespace lmerge {

void EncodeElement(const StreamElement& element, Encoder* encoder) {
  encoder->WriteU8(static_cast<uint8_t>(element.kind()));
  switch (element.kind()) {
    case ElementKind::kInsert:
      encoder->WriteRow(element.payload());
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kAdjust:
      encoder->WriteRow(element.payload());
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.v_old());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kStable:
      encoder->WriteI64(element.stable_time());
      break;
  }
}

Status DecodeElement(Decoder* decoder, StreamElement* element) {
  uint8_t tag = 0;
  Status status = decoder->ReadU8(&tag);
  if (!status.ok()) return status;
  switch (static_cast<ElementKind>(tag)) {
    case ElementKind::kInsert: {
      Row payload;
      int64_t vs = 0;
      int64_t ve = 0;
      if (!(status = decoder->ReadRow(&payload)).ok()) return status;
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Insert(std::move(payload), vs, ve);
      return Status::Ok();
    }
    case ElementKind::kAdjust: {
      Row payload;
      int64_t vs = 0;
      int64_t v_old = 0;
      int64_t ve = 0;
      if (!(status = decoder->ReadRow(&payload)).ok()) return status;
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&v_old)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Adjust(std::move(payload), vs, v_old, ve);
      return Status::Ok();
    }
    case ElementKind::kStable: {
      int64_t t = 0;
      if (!(status = decoder->ReadI64(&t)).ok()) return status;
      *element = StreamElement::Stable(t);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown element tag " +
                                 std::to_string(tag));
}

void EncodeSequence(const ElementSequence& elements, Encoder* encoder) {
  // Floor estimate (tag + three i64 per element, payload excluded): large
  // batches reach their final buffer size in O(1) reallocations instead of
  // O(log n) doubling steps from empty.
  encoder->Reserve(4 + elements.size() * 25);
  encoder->WriteU32(static_cast<uint32_t>(elements.size()));
  for (const StreamElement& e : elements) EncodeElement(e, encoder);
}

Status DecodeSequence(Decoder* decoder, ElementSequence* elements) {
  uint32_t count = 0;
  Status status = decoder->ReadU32(&count);
  if (!status.ok()) return status;
  if (count > decoder->remaining()) {
    return Status::InvalidArgument("sequence length exceeds buffer");
  }
  elements->clear();
  elements->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StreamElement element;
    status = DecodeElement(decoder, &element);
    if (!status.ok()) return status;
    elements->push_back(std::move(element));
  }
  return Status::Ok();
}

uint32_t PayloadDictEncoder::Intern(
    const Row& payload, std::vector<std::pair<uint32_t, Row>>* new_defs) {
  // Process-wide dictionary hit-rate instruments; the hit rate is what
  // tells an operator whether v2 payload coding is earning its keep.
  static obs::Counter* const lookups =
      obs::MetricsRegistry::Global().GetCounter("net.dict.lookups");
  static obs::Counter* const hits =
      obs::MetricsRegistry::Global().GetCounter("net.dict.hits");
  if (payload.identity() == nullptr) return kInlinePayloadId;  // empty row
  lookups->Increment();
  auto [slot, inserted] = ids_.Insert(payload.identity(), 0);
  if (!inserted) {
    hits->Increment();
    return *slot;
  }
  if (pinned_.size() >= capacity_) {
    // Dictionary full: fall back to inline forever for this payload.  The
    // placeholder slot is removed so the table does not grow unboundedly
    // with never-coded identities.
    ids_.Erase(payload.identity());
    return kInlinePayloadId;
  }
  const uint32_t id = static_cast<uint32_t>(pinned_.size());
  *slot = id;
  pinned_.push_back(payload);  // pin the rep: identity stays valid
  new_defs->emplace_back(id, payload);
  return id;
}

Status PayloadDictDecoder::Define(uint32_t id, Row payload) {
  if (id == kInlinePayloadId) {
    return Status::InvalidArgument("payload def with reserved inline id");
  }
  if (rows_.size() >= static_cast<int64_t>(capacity_)) {
    return Status::InvalidArgument("payload dictionary over capacity");
  }
  auto [slot, inserted] = rows_.Insert(id, Row());
  if (!inserted) {
    return Status::InvalidArgument("duplicate payload def for id " +
                                   std::to_string(id));
  }
  *slot = std::move(payload);
  return Status::Ok();
}

Status PayloadDictDecoder::Resolve(uint32_t id, Row* payload) const {
  const Row* found = rows_.Find(id);
  if (found == nullptr) {
    return Status::InvalidArgument("undefined payload id " +
                                   std::to_string(id));
  }
  *payload = *found;
  return Status::Ok();
}

void EncodePayloadDef(uint32_t id, const Row& payload, Encoder* encoder) {
  encoder->WriteU32(id);
  encoder->WriteRow(payload);
}

Status DecodePayloadDef(Decoder* decoder, uint32_t* id, Row* payload) {
  Status status = decoder->ReadU32(id);
  if (!status.ok()) return status;
  return decoder->ReadRow(payload);
}

namespace {

// Writes the payload reference for one insert/adjust element: a dictionary
// id, or the inline sentinel followed by the full row.
void EncodePayloadRef(const Row& payload, PayloadDictEncoder* dict,
                      std::vector<std::pair<uint32_t, Row>>* new_defs,
                      Encoder* encoder) {
  const uint32_t id = dict->Intern(payload, new_defs);
  encoder->WriteU32(id);
  if (id == kInlinePayloadId) encoder->WriteRow(payload);
}

Status DecodePayloadRef(Decoder* decoder, const PayloadDictDecoder& dict,
                        Row* payload) {
  uint32_t id = 0;
  Status status = decoder->ReadU32(&id);
  if (!status.ok()) return status;
  if (id == kInlinePayloadId) return decoder->ReadRow(payload);
  return dict.Resolve(id, payload);
}

}  // namespace

void EncodeElementDict(const StreamElement& element, PayloadDictEncoder* dict,
                       std::vector<std::pair<uint32_t, Row>>* new_defs,
                       Encoder* encoder) {
  encoder->WriteU8(static_cast<uint8_t>(element.kind()));
  switch (element.kind()) {
    case ElementKind::kInsert:
      EncodePayloadRef(element.payload(), dict, new_defs, encoder);
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kAdjust:
      EncodePayloadRef(element.payload(), dict, new_defs, encoder);
      encoder->WriteI64(element.vs());
      encoder->WriteI64(element.v_old());
      encoder->WriteI64(element.ve());
      break;
    case ElementKind::kStable:
      encoder->WriteI64(element.stable_time());
      break;
  }
}

Status DecodeElementDict(Decoder* decoder, const PayloadDictDecoder& dict,
                         StreamElement* element) {
  uint8_t tag = 0;
  Status status = decoder->ReadU8(&tag);
  if (!status.ok()) return status;
  switch (static_cast<ElementKind>(tag)) {
    case ElementKind::kInsert: {
      Row payload;
      int64_t vs = 0;
      int64_t ve = 0;
      if (!(status = DecodePayloadRef(decoder, dict, &payload)).ok()) {
        return status;
      }
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Insert(std::move(payload), vs, ve);
      return Status::Ok();
    }
    case ElementKind::kAdjust: {
      Row payload;
      int64_t vs = 0;
      int64_t v_old = 0;
      int64_t ve = 0;
      if (!(status = DecodePayloadRef(decoder, dict, &payload)).ok()) {
        return status;
      }
      if (!(status = decoder->ReadI64(&vs)).ok()) return status;
      if (!(status = decoder->ReadI64(&v_old)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      *element = StreamElement::Adjust(std::move(payload), vs, v_old, ve);
      return Status::Ok();
    }
    case ElementKind::kStable: {
      int64_t t = 0;
      if (!(status = decoder->ReadI64(&t)).ok()) return status;
      *element = StreamElement::Stable(t);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown element tag " +
                                 std::to_string(tag));
}

void EncodeSequenceDict(const ElementSequence& elements,
                        PayloadDictEncoder* dict,
                        std::vector<std::pair<uint32_t, Row>>* new_defs,
                        Encoder* encoder) {
  // Floor estimate: tag + id + two i64 per element.
  encoder->Reserve(4 + elements.size() * 21);
  encoder->WriteU32(static_cast<uint32_t>(elements.size()));
  for (const StreamElement& e : elements) {
    EncodeElementDict(e, dict, new_defs, encoder);
  }
}

Status DecodeSequenceDict(Decoder* decoder, const PayloadDictDecoder& dict,
                          ElementSequence* elements) {
  uint32_t count = 0;
  Status status = decoder->ReadU32(&count);
  if (!status.ok()) return status;
  if (count > decoder->remaining()) {
    return Status::InvalidArgument("sequence length exceeds buffer");
  }
  elements->clear();
  elements->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    StreamElement element;
    status = DecodeElementDict(decoder, dict, &element);
    if (!status.ok()) return status;
    elements->push_back(std::move(element));
  }
  return Status::Ok();
}

std::string SerializeSequence(const ElementSequence& elements) {
  Encoder encoder;
  EncodeSequence(elements, &encoder);
  return encoder.TakeBytes();
}

Status DeserializeSequence(const std::string& bytes,
                           ElementSequence* elements) {
  Decoder decoder(bytes);
  Status status = DecodeSequence(&decoder, elements);
  if (!status.ok()) return status;
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after sequence");
  }
  return Status::Ok();
}

}  // namespace lmerge
