// Stream validation: checks that a physical element sequence is legal and
// conforms to declared stream properties.
//
// A StreamValidator is fed elements one at a time.  It maintains the running
// TDB and rejects elements that violate the element-model contract (adjusts
// of absent events, inserts behind the stable point, ...) or the declared
// properties (e.g., an adjust on a stream declared insert-only, a Vs
// regression on a stream declared ordered).  Sinks in tests wrap one around
// every LMerge output so that each algorithm's output stream is continuously
// re-validated.

#ifndef LMERGE_STREAM_VALIDATE_H_
#define LMERGE_STREAM_VALIDATE_H_

#include <cstdint>

#include "common/status.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "temporal/tdb.h"

namespace lmerge {

class StreamValidator {
 public:
  explicit StreamValidator(StreamProperties properties = StreamProperties())
      : properties_(properties) {}

  // Validates and applies one element.  On error the validator state is
  // unchanged and subsequent elements are checked against the old state.
  Status Consume(const StreamElement& element);

  // Validates a whole sequence; stops at the first error.
  Status ConsumeAll(const ElementSequence& elements);

  const Tdb& tdb() const { return tdb_; }
  int64_t element_count() const { return element_count_; }
  Timestamp max_vs() const { return max_vs_; }

 private:
  StreamProperties properties_;
  Tdb tdb_;
  Timestamp max_vs_ = kMinTimestamp;
  int64_t element_count_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_STREAM_VALIDATE_H_
