// The open/close stream model of Example 3 (Sec. III-A).
//
//   open(p, Vs)  — an event with payload p starts at Vs.
//   close(p, Ve) — the event with payload p ends at Ve; a later close for the
//                  same payload revises an earlier one.
//
// Open/close elements correspond to I-streams and D-streams (STREAM, Oracle
// CEP) or positive/negative tuples (Nile).  At most one event per payload is
// active at a time.  This module demonstrates that the LMerge theory applies
// across element models: it provides reconstitution, the subset-compatibility
// criterion of Example 4 (under the at-most-one-close property, O[j] is
// compatible with inputs iff O[j] ⊆ ∪ I), a merge algorithm, and lossless
// conversion into the interval element model.

#ifndef LMERGE_STREAM_OPENCLOSE_H_
#define LMERGE_STREAM_OPENCLOSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "stream/element.h"

namespace lmerge {

struct OpenCloseElement {
  enum class Kind : uint8_t { kOpen, kClose };

  Kind kind;
  Row payload;
  Timestamp time;

  static OpenCloseElement Open(Row payload, Timestamp vs) {
    return {Kind::kOpen, std::move(payload), vs};
  }
  static OpenCloseElement Close(Row payload, Timestamp ve) {
    return {Kind::kClose, std::move(payload), ve};
  }

  std::string ToString() const;

  friend bool operator==(const OpenCloseElement& a,
                         const OpenCloseElement& b) {
    return a.kind == b.kind && a.time == b.time && a.payload == b.payload;
  }
};

using OpenCloseSequence = std::vector<OpenCloseElement>;

// The TDB reconstituted from an open/close prefix: payload -> [Vs, Ve).
// Ve == kInfinity while the event is open.  A close for a payload that was
// never opened is an error; a repeated close revises the end time.
class OpenCloseTdb {
 public:
  Status Apply(const OpenCloseElement& element);
  static OpenCloseTdb Reconstitute(const OpenCloseSequence& prefix);

  bool Equals(const OpenCloseTdb& other) const;

  int64_t EventCount() const { return static_cast<int64_t>(events_.size()); }

  // Returns [Vs, Ve) for `payload`, or false if absent.
  bool Lookup(const Row& payload, Timestamp* vs, Timestamp* ve) const;

  std::string ToString() const;

 private:
  struct Interval {
    Timestamp vs;
    Timestamp ve;  // kInfinity while open
  };
  std::map<Row, Interval> events_;
};

// Example 4's compatibility criterion under the at-most-one-close property:
// every element of `output` must appear in some input (as a multiset, per
// payload at most one open and one close are meaningful).
Status CheckOpenCloseCompatibility(
    const std::vector<const OpenCloseSequence*>& inputs,
    const OpenCloseSequence& output);

// LMerge for open/close streams with the at-most-one-close property: emits
// each open() and each close() exactly once, whichever input delivers it
// first.
class OpenCloseMerge {
 public:
  // Feeds one element from input `stream`; appends any output to `out`.
  void OnElement(int stream, const OpenCloseElement& element,
                 OpenCloseSequence* out);

  int64_t opened_count() const {
    return static_cast<int64_t>(state_.size());
  }

 private:
  struct PayloadState {
    bool open_emitted = false;
    bool close_emitted = false;
  };
  std::map<Row, PayloadState> state_;
};

// LMerge for the *general* open/close model of Example 3, where a later
// close() revises an earlier one (stream W[6]: close(B,6) then close(B,5)).
// Opens are emitted on first sight; a close is emitted whenever it changes
// the output's current end for the payload — so the output is exactly as
// revisable as the inputs, and converges to the inputs' final TDB.
class OpenCloseMergeRevisable {
 public:
  void OnElement(int stream, const OpenCloseElement& element,
                 OpenCloseSequence* out);

  int64_t opened_count() const {
    return static_cast<int64_t>(state_.size());
  }

 private:
  struct PayloadState {
    bool open_emitted = false;
    bool close_emitted = false;
    bool has_held_close = false;
    Timestamp close_value = kInfinity;
  };
  std::map<Row, PayloadState> state_;
};

// Converts an open/close sequence into the interval element model:
// open(p,Vs) -> insert(p, Vs, inf); close(p,Ve) -> adjust(p, Vs, prev, Ve).
// Fails on a close without a matching open.
Status ConvertToIntervalElements(const OpenCloseSequence& input,
                                 ElementSequence* out);

}  // namespace lmerge

#endif  // LMERGE_STREAM_OPENCLOSE_H_
