#include "stream/element.h"

namespace lmerge {

const char* ElementKindName(ElementKind kind) {
  switch (kind) {
    case ElementKind::kInsert:
      return "insert";
    case ElementKind::kAdjust:
      return "adjust";
    case ElementKind::kStable:
      return "stable";
  }
  return "unknown";
}

std::string StreamElement::ToString() const {
  switch (kind_) {
    case ElementKind::kInsert:
      return "insert(" + payload_.ToString() + ", " + TimestampToString(vs_) +
             ", " + TimestampToString(ve_) + ")";
    case ElementKind::kAdjust:
      return "adjust(" + payload_.ToString() + ", " + TimestampToString(vs_) +
             ", " + TimestampToString(v_old_) + " -> " +
             TimestampToString(ve_) + ")";
    case ElementKind::kStable:
      return "stable(" + TimestampToString(vs_) + ")";
  }
  return "?";
}

bool operator==(const StreamElement& a, const StreamElement& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case ElementKind::kInsert:
      return a.vs_ == b.vs_ && a.ve_ == b.ve_ && a.payload_ == b.payload_;
    case ElementKind::kAdjust:
      return a.vs_ == b.vs_ && a.v_old_ == b.v_old_ && a.ve_ == b.ve_ &&
             a.payload_ == b.payload_;
    case ElementKind::kStable:
      return a.vs_ == b.vs_;
  }
  return false;
}

std::string ElementSequenceToString(const ElementSequence& elements) {
  std::string out;
  for (const StreamElement& e : elements) {
    out += e.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace lmerge
