#include "stream/validate.h"

namespace lmerge {

Status StreamValidator::Consume(const StreamElement& element) {
  // Property conformance checks first (they do not mutate state).
  switch (element.kind()) {
    case ElementKind::kInsert: {
      if (properties_.ordered && element.vs() < max_vs_) {
        return Status::FailedPrecondition(
            "ordered stream regressed: " + element.ToString() +
            " after max Vs " + TimestampToString(max_vs_));
      }
      if (properties_.strictly_increasing && element.vs() <= max_vs_ &&
          element_count_ > 0) {
        return Status::FailedPrecondition(
            "strictly increasing stream repeated Vs: " + element.ToString());
      }
      break;
    }
    case ElementKind::kAdjust: {
      if (properties_.insert_only) {
        return Status::FailedPrecondition(
            "adjust on an insert-only stream: " + element.ToString());
      }
      break;
    }
    case ElementKind::kStable:
      break;
  }

  Tdb snapshot = tdb_;  // roll back on failure
  const Status status = tdb_.Apply(element);
  if (!status.ok()) {
    tdb_ = std::move(snapshot);
    return status;
  }
  if (element.is_insert()) {
    if (element.vs() > max_vs_) max_vs_ = element.vs();
    if (properties_.vs_payload_key) {
      int64_t multiplicity = 0;
      for (const auto& [ve, count] :
           tdb_.EndTimesFor(VsPayload(element.vs(), element.payload()))) {
        multiplicity += count;
      }
      if (multiplicity > 1) {
        tdb_ = std::move(snapshot);
        return Status::FailedPrecondition(
            "(Vs,payload) key violated by " + element.ToString());
      }
    }
  }
  ++element_count_;
  return Status::Ok();
}

Status StreamValidator::ConsumeAll(const ElementSequence& elements) {
  for (const StreamElement& e : elements) {
    const Status status = Consume(e);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace lmerge
