// Binary serialization of stream elements and sequences — the wire format
// for checkpoints and for shipping physical streams between processes.

#ifndef LMERGE_STREAM_ELEMENT_SERDE_H_
#define LMERGE_STREAM_ELEMENT_SERDE_H_

#include "common/serde.h"
#include "stream/element.h"

namespace lmerge {

void EncodeElement(const StreamElement& element, Encoder* encoder);
Status DecodeElement(Decoder* decoder, StreamElement* element);

// Length-prefixed sequence.
void EncodeSequence(const ElementSequence& elements, Encoder* encoder);
Status DecodeSequence(Decoder* decoder, ElementSequence* elements);

// Convenience round-trip helpers.
std::string SerializeSequence(const ElementSequence& elements);
Status DeserializeSequence(const std::string& bytes,
                           ElementSequence* elements);

}  // namespace lmerge

#endif  // LMERGE_STREAM_ELEMENT_SERDE_H_
