// Binary serialization of stream elements and sequences — the wire format
// for checkpoints and for shipping physical streams between processes.
//
// Two encodings exist for sequences:
//  - Inline (EncodeSequence): every element carries its full payload.  Used
//    by checkpoints and by protocol-v1 peers.
//  - Dictionary-coded (EncodeSequenceDict): element payloads are replaced by
//    4-byte ids into a session-scoped payload dictionary, built up by
//    PAYLOAD_DEF messages.  Redundant publishers re-send the same payloads
//    constantly (that is the paper's whole setting), so after warm-up the
//    per-element wire cost drops from the full row to one u32.  The id
//    space is per (session, direction); kInlinePayloadId escapes to an
//    inline row when the dictionary is full or the payload is empty.

#ifndef LMERGE_STREAM_ELEMENT_SERDE_H_
#define LMERGE_STREAM_ELEMENT_SERDE_H_

#include <utility>
#include <vector>

#include "common/payload_ledger.h"
#include "common/serde.h"
#include "container/hash_table.h"
#include "stream/element.h"

namespace lmerge {

void EncodeElement(const StreamElement& element, Encoder* encoder);
Status DecodeElement(Decoder* decoder, StreamElement* element);

// Length-prefixed sequence.
void EncodeSequence(const ElementSequence& elements, Encoder* encoder);
Status DecodeSequence(Decoder* decoder, ElementSequence* elements);

// Convenience round-trip helpers.
std::string SerializeSequence(const ElementSequence& elements);
Status DeserializeSequence(const std::string& bytes,
                           ElementSequence* elements);

// --- Payload dictionary (protocol v2) ---

// Sentinel id meaning "no dictionary entry; a full row follows inline".
inline constexpr uint32_t kInlinePayloadId = 0xffffffffu;
// Default cap on dictionary entries per session direction; bounds the
// decoder's memory against a hostile or miscoded peer.
inline constexpr uint32_t kDefaultPayloadDictCapacity = 1u << 16;

// Sender side: maps payload identity -> id.  Entries pin a Row handle so
// the rep stays live (its address stays valid as a key) for the session's
// lifetime.  Identity-keyed lookup means interned payloads dedup across
// every element that shares the rep — no content hashing on the hot path.
class PayloadDictEncoder {
 public:
  explicit PayloadDictEncoder(
      uint32_t capacity = kDefaultPayloadDictCapacity)
      : capacity_(capacity) {}

  // Returns the id under which `payload` is (now) defined, assigning the
  // next free id on first sight, or kInlinePayloadId when the payload is
  // empty or the dictionary is full.  When a new id is assigned, the pair
  // is appended to *new_defs: the caller must ship each as a PAYLOAD_DEF
  // before the message that references it.
  uint32_t Intern(const Row& payload,
                  std::vector<std::pair<uint32_t, Row>>* new_defs);

  int64_t entries() const { return static_cast<int64_t>(pinned_.size()); }

 private:
  uint32_t capacity_;
  HashTable<const void*, uint32_t, PayloadIdentityHash> ids_;
  std::vector<Row> pinned_;  // index == id
};

// Receiver side: id -> Row.  Both failure modes — defining an id twice and
// referencing an undefined id — are protocol violations surfaced as Status.
class PayloadDictDecoder {
 public:
  explicit PayloadDictDecoder(
      uint32_t capacity = kDefaultPayloadDictCapacity)
      : capacity_(capacity) {}

  Status Define(uint32_t id, Row payload);
  Status Resolve(uint32_t id, Row* payload) const;

  int64_t entries() const { return rows_.size(); }

 private:
  struct IdHash {
    uint64_t operator()(uint32_t id) const {
      return Mix64(static_cast<uint64_t>(id));
    }
  };

  uint32_t capacity_;
  HashTable<uint32_t, Row, IdHash> rows_;
};

// PAYLOAD_DEF payload: u32 id, then the row inline.
void EncodePayloadDef(uint32_t id, const Row& payload, Encoder* encoder);
Status DecodePayloadDef(Decoder* decoder, uint32_t* id, Row* payload);

// Dictionary-coded element: like EncodeElement but insert/adjust payloads
// are written as a u32 id (kInlinePayloadId + inline row as the escape).
void EncodeElementDict(const StreamElement& element, PayloadDictEncoder* dict,
                       std::vector<std::pair<uint32_t, Row>>* new_defs,
                       Encoder* encoder);
Status DecodeElementDict(Decoder* decoder, const PayloadDictDecoder& dict,
                         StreamElement* element);

// Dictionary-coded sequence (ELEMENTS_DICT payload).
void EncodeSequenceDict(const ElementSequence& elements,
                        PayloadDictEncoder* dict,
                        std::vector<std::pair<uint32_t, Row>>* new_defs,
                        Encoder* encoder);
Status DecodeSequenceDict(Decoder* decoder, const PayloadDictDecoder& dict,
                          ElementSequence* elements);

}  // namespace lmerge

#endif  // LMERGE_STREAM_ELEMENT_SERDE_H_
