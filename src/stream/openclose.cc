#include "stream/openclose.h"

#include "common/check.h"

namespace lmerge {

std::string OpenCloseElement::ToString() const {
  return std::string(kind == Kind::kOpen ? "open(" : "close(") +
         payload.ToString() + ", " + TimestampToString(time) + ")";
}

Status OpenCloseTdb::Apply(const OpenCloseElement& element) {
  if (element.kind == OpenCloseElement::Kind::kOpen) {
    auto [it, inserted] =
        events_.emplace(element.payload, Interval{element.time, kInfinity});
    if (!inserted) {
      return Status::AlreadyExists("payload already open: " +
                                   element.ToString());
    }
    return Status::Ok();
  }
  auto it = events_.find(element.payload);
  if (it == events_.end()) {
    return Status::NotFound("close without open: " + element.ToString());
  }
  if (element.time < it->second.vs) {
    return Status::InvalidArgument("close before open: " +
                                   element.ToString());
  }
  it->second.ve = element.time;  // a later close revises an earlier one
  return Status::Ok();
}

OpenCloseTdb OpenCloseTdb::Reconstitute(const OpenCloseSequence& prefix) {
  OpenCloseTdb tdb;
  for (const OpenCloseElement& e : prefix) {
    const Status status = tdb.Apply(e);
    LM_CHECK_MSG(status.ok(), "Reconstitute: %s", status.ToString().c_str());
  }
  return tdb;
}

bool OpenCloseTdb::Equals(const OpenCloseTdb& other) const {
  if (events_.size() != other.events_.size()) return false;
  auto a = events_.begin();
  auto b = other.events_.begin();
  for (; a != events_.end(); ++a, ++b) {
    if (!(a->first == b->first) || a->second.vs != b->second.vs ||
        a->second.ve != b->second.ve) {
      return false;
    }
  }
  return true;
}

bool OpenCloseTdb::Lookup(const Row& payload, Timestamp* vs,
                          Timestamp* ve) const {
  auto it = events_.find(payload);
  if (it == events_.end()) return false;
  *vs = it->second.vs;
  *ve = it->second.ve;
  return true;
}

std::string OpenCloseTdb::ToString() const {
  std::string out = "OpenCloseTdb {\n";
  for (const auto& [payload, interval] : events_) {
    out += "  " + payload.ToString() + " [" +
           TimestampToString(interval.vs) + ", " +
           TimestampToString(interval.ve) + ")\n";
  }
  out += "}";
  return out;
}

Status CheckOpenCloseCompatibility(
    const std::vector<const OpenCloseSequence*>& inputs,
    const OpenCloseSequence& output) {
  for (const OpenCloseElement& e : output) {
    bool found = false;
    for (const OpenCloseSequence* input : inputs) {
      for (const OpenCloseElement& candidate : *input) {
        if (candidate == e) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) {
      return Status::FailedPrecondition(
          "output element not present in any input: " + e.ToString());
    }
  }
  return Status::Ok();
}

void OpenCloseMerge::OnElement(int stream, const OpenCloseElement& element,
                               OpenCloseSequence* out) {
  (void)stream;  // all inputs are interchangeable under this property set
  PayloadState& state = state_[element.payload];
  if (element.kind == OpenCloseElement::Kind::kOpen) {
    if (!state.open_emitted) {
      state.open_emitted = true;
      out->push_back(element);
    }
    return;
  }
  // A close can only be emitted once (at-most-one-close property) and only
  // after the open has been emitted.
  if (state.open_emitted && !state.close_emitted) {
    state.close_emitted = true;
    out->push_back(element);
  }
}

void OpenCloseMergeRevisable::OnElement(int stream,
                                        const OpenCloseElement& element,
                                        OpenCloseSequence* out) {
  (void)stream;
  PayloadState& state = state_[element.payload];
  if (element.kind == OpenCloseElement::Kind::kOpen) {
    if (!state.open_emitted) {
      state.open_emitted = true;
      out->push_back(element);
      if (state.has_held_close) {
        // A close raced ahead of the open on a faster input; flush it now.
        state.has_held_close = false;
        state.close_emitted = true;
        out->push_back(
            OpenCloseElement::Close(element.payload, state.close_value));
      }
    }
    return;
  }
  if (!state.open_emitted) {
    // Close before its open (the open is on a slower input): hold the
    // latest revision until the open arrives.
    state.has_held_close = true;
    state.close_value = element.time;
    return;
  }
  if (!state.close_emitted || state.close_value != element.time) {
    state.close_emitted = true;
    state.close_value = element.time;
    out->push_back(element);
  }
}

Status ConvertToIntervalElements(const OpenCloseSequence& input,
                                 ElementSequence* out) {
  std::map<Row, std::pair<Timestamp, Timestamp>> open_events;  // p -> (Vs,Ve)
  for (const OpenCloseElement& e : input) {
    if (e.kind == OpenCloseElement::Kind::kOpen) {
      auto [it, inserted] =
          open_events.emplace(e.payload, std::make_pair(e.time, kInfinity));
      if (!inserted) {
        return Status::AlreadyExists("payload already open: " + e.ToString());
      }
      out->push_back(StreamElement::Insert(e.payload, e.time, kInfinity));
    } else {
      auto it = open_events.find(e.payload);
      if (it == open_events.end()) {
        return Status::NotFound("close without open: " + e.ToString());
      }
      out->push_back(StreamElement::Adjust(e.payload, it->second.first,
                                           it->second.second, e.time));
      it->second.second = e.time;
    }
  }
  return Status::Ok();
}

}  // namespace lmerge
