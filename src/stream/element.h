// The physical stream element model (Sec. III-E, StreamInsight-style):
//
//   insert(p, Vs, Ve)        — add event ⟨p, Vs, Ve⟩ to the TDB.
//   adjust(p, Vs, Vold, Ve)  — change ⟨p, Vs, Vold⟩ to ⟨p, Vs, Ve⟩;
//                              if Ve == Vs the event is removed.
//   stable(Vc)               — the portion of the TDB before Vc is stable:
//                              no future insert with Vs < Vc, and no future
//                              adjust with Vold < Vc or Ve < Vc.
//
// A physical stream is a sequence of these elements; any finite prefix
// reconstitutes into a TDB instance (temporal/tdb.h).

#ifndef LMERGE_STREAM_ELEMENT_H_
#define LMERGE_STREAM_ELEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/timestamp.h"
#include "temporal/event.h"

namespace lmerge {

enum class ElementKind : uint8_t {
  kInsert,
  kAdjust,
  kStable,
};

const char* ElementKindName(ElementKind kind);

class StreamElement {
 public:
  StreamElement() = default;

  static StreamElement Insert(Row payload, Timestamp vs, Timestamp ve) {
    StreamElement e;
    e.kind_ = ElementKind::kInsert;
    e.payload_ = std::move(payload);
    e.vs_ = vs;
    e.ve_ = ve;
    return e;
  }

  static StreamElement Adjust(Row payload, Timestamp vs, Timestamp v_old,
                              Timestamp ve) {
    StreamElement e;
    e.kind_ = ElementKind::kAdjust;
    e.payload_ = std::move(payload);
    e.vs_ = vs;
    e.v_old_ = v_old;
    e.ve_ = ve;
    return e;
  }

  static StreamElement Stable(Timestamp vc) {
    StreamElement e;
    e.kind_ = ElementKind::kStable;
    e.vs_ = vc;
    return e;
  }

  ElementKind kind() const { return kind_; }
  bool is_insert() const { return kind_ == ElementKind::kInsert; }
  bool is_adjust() const { return kind_ == ElementKind::kAdjust; }
  bool is_stable() const { return kind_ == ElementKind::kStable; }

  // Payload; meaningful for insert/adjust.
  const Row& payload() const { return payload_; }
  // Validity start (insert/adjust) — for stable elements this slot holds Vc.
  Timestamp vs() const { return vs_; }
  // New validity end (insert/adjust).
  Timestamp ve() const { return ve_; }
  // Previous validity end being adjusted (adjust only).
  Timestamp v_old() const { return v_old_; }
  // The stable point Vc (stable only).
  Timestamp stable_time() const { return vs_; }

  // The event this insert denotes.
  Event ToEvent() const { return Event(payload_, vs_, ve_); }

  // Bytes attributable to the element (payload deep size included); used by
  // operators that buffer elements (Cleanse, queues).
  int64_t DeepSizeBytes() const {
    return static_cast<int64_t>(sizeof(StreamElement)) -
           static_cast<int64_t>(sizeof(Row)) + payload_.DeepSizeBytes();
  }

  std::string ToString() const;

  friend bool operator==(const StreamElement& a, const StreamElement& b);
  friend bool operator!=(const StreamElement& a, const StreamElement& b) {
    return !(a == b);
  }

 private:
  ElementKind kind_ = ElementKind::kStable;
  Row payload_;
  Timestamp vs_ = 0;
  Timestamp v_old_ = 0;
  Timestamp ve_ = 0;
};

// A finite stream prefix.
using ElementSequence = std::vector<StreamElement>;

// Renders a sequence one element per line (diagnostics and golden tests).
std::string ElementSequenceToString(const ElementSequence& elements);

}  // namespace lmerge

#endif  // LMERGE_STREAM_ELEMENT_H_
