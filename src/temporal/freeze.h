// Freeze taxonomy of Sec. III-C: a stable(Vc) element "freezes" parts of the
// TDB.  Relative to watermark L (the latest stable point seen):
//
//   fully frozen (FF):  Ve < L        — no future adjust can alter the event;
//                                       it is in every future TDB version.
//   half frozen (HF):   Vs < L <= Ve  — some event ⟨p, Vs, _⟩ will be in the
//                                       TDB henceforth (its end may change).
//   unfrozen (UF):      L <= Vs       — the event may still be removed.

#ifndef LMERGE_TEMPORAL_FREEZE_H_
#define LMERGE_TEMPORAL_FREEZE_H_

#include "common/timestamp.h"

namespace lmerge {

enum class FreezeStatus {
  kUnfrozen,
  kHalfFrozen,
  kFullyFrozen,
};

inline const char* FreezeStatusName(FreezeStatus status) {
  switch (status) {
    case FreezeStatus::kUnfrozen:
      return "UF";
    case FreezeStatus::kHalfFrozen:
      return "HF";
    case FreezeStatus::kFullyFrozen:
      return "FF";
  }
  return "?";
}

// Classifies the lifetime [vs, ve) against stable watermark `stable`.
inline FreezeStatus ClassifyFreeze(Timestamp vs, Timestamp ve,
                                   Timestamp stable) {
  if (ve < stable) return FreezeStatus::kFullyFrozen;
  if (vs < stable) return FreezeStatus::kHalfFrozen;
  return FreezeStatus::kUnfrozen;
}

}  // namespace lmerge

#endif  // LMERGE_TEMPORAL_FREEZE_H_
