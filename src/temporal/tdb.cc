#include "temporal/tdb.h"

#include "common/check.h"

namespace lmerge {

Status Tdb::Apply(const StreamElement& element) {
  switch (element.kind()) {
    case ElementKind::kInsert: {
      if (element.vs() < stable_point_) {
        return Status::FailedPrecondition(
            "insert with Vs=" + TimestampToString(element.vs()) +
            " before stable point " + TimestampToString(stable_point_));
      }
      if (element.ve() < element.vs()) {
        return Status::InvalidArgument("insert with Ve < Vs: " +
                                       element.ToString());
      }
      if (element.ve() == element.vs()) {
        // Zero-length lifetime: contributes nothing; treat as a no-op.
        return Status::Ok();
      }
      Event event = element.ToEvent();
      ++events_[event];
      ++total_count_;
      return Status::Ok();
    }
    case ElementKind::kAdjust: {
      if (element.v_old() < stable_point_) {
        return Status::FailedPrecondition(
            "adjust with Vold=" + TimestampToString(element.v_old()) +
            " before stable point " + TimestampToString(stable_point_));
      }
      if (element.ve() < stable_point_ && element.ve() != element.vs()) {
        return Status::FailedPrecondition(
            "adjust with Ve=" + TimestampToString(element.ve()) +
            " before stable point " + TimestampToString(stable_point_));
      }
      if (element.ve() < element.vs()) {
        return Status::InvalidArgument("adjust with Ve < Vs: " +
                                       element.ToString());
      }
      if (element.ve() == element.vs() && element.vs() < stable_point_) {
        // Removing an event whose start is already stable would change the
        // half-frozen population.
        return Status::FailedPrecondition(
            "adjust removes event with Vs before stable point: " +
            element.ToString());
      }
      const Event target(element.payload(), element.vs(), element.v_old());
      auto it = events_.find(target);
      if (it == events_.end()) {
        return Status::NotFound("adjust target absent: " + element.ToString());
      }
      if (--it->second == 0) events_.erase(it);
      --total_count_;
      if (element.ve() > element.vs()) {
        ++events_[Event(element.payload(), element.vs(), element.ve())];
        ++total_count_;
      }
      return Status::Ok();
    }
    case ElementKind::kStable: {
      if (element.stable_time() > stable_point_) {
        stable_point_ = element.stable_time();
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown element kind");
}

Tdb Tdb::Reconstitute(const ElementSequence& prefix) {
  Tdb tdb;
  for (const StreamElement& e : prefix) {
    const Status status = tdb.Apply(e);
    LM_CHECK_MSG(status.ok(), "Reconstitute: %s", status.ToString().c_str());
  }
  return tdb;
}

bool Tdb::Equals(const Tdb& other) const {
  return total_count_ == other.total_count_ && events_ == other.events_;
}

int64_t Tdb::CountOf(const Event& event) const {
  auto it = events_.find(event);
  return it == events_.end() ? 0 : it->second;
}

std::vector<std::pair<Timestamp, int64_t>> Tdb::EndTimesFor(
    const VsPayload& key) const {
  std::vector<std::pair<Timestamp, int64_t>> result;
  Event probe(key.payload, key.vs, kMinTimestamp);
  for (auto it = events_.lower_bound(probe); it != events_.end(); ++it) {
    const Event& e = it->first;
    if (e.vs != key.vs || !(e.payload == key.payload)) break;
    result.emplace_back(e.ve, it->second);
  }
  return result;
}

bool Tdb::VsPayloadIsKey() const {
  const Event* prev = nullptr;
  for (const auto& [event, count] : events_) {
    if (count > 1) return false;
    if (prev != nullptr && prev->vs == event.vs &&
        prev->payload == event.payload) {
      return false;
    }
    prev = &event;
  }
  return true;
}

std::vector<Event> Tdb::ToVector() const {
  std::vector<Event> out;
  out.reserve(static_cast<size_t>(total_count_));
  for (const auto& [event, count] : events_) {
    for (int64_t i = 0; i < count; ++i) out.push_back(event);
  }
  return out;
}

std::string Tdb::ToString() const {
  std::string out =
      "TDB(stable=" + TimestampToString(stable_point_) + ") {\n";
  for (const auto& [event, count] : events_) {
    out += "  " + event.ToString();
    if (count > 1) out += " x" + std::to_string(count);
    out += "  " + std::string(FreezeStatusName(Classify(event)));
    out += "\n";
  }
  out += "}";
  return out;
}

}  // namespace lmerge
