// Tdb: the temporal database a stream reconstitutes into (Sec. III-A).
//
// A TDB instance is a multiset of events ⟨p, Vs, Ve⟩.  Tdb supports applying
// physical stream elements one at a time — the reconstitution function
// tdb(S, i) of the paper is Tdb::Reconstitute(prefix) — plus the equivalence
// and freeze queries that the theory of Sec. III is phrased in.  It is a
// reference/spec structure used by validators, tests, and examples, not by
// the hot-path LMerge algorithms (those use in2t/in3t).

#ifndef LMERGE_TEMPORAL_TDB_H_
#define LMERGE_TEMPORAL_TDB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "stream/element.h"
#include "temporal/event.h"
#include "temporal/freeze.h"

namespace lmerge {

class Tdb {
 public:
  Tdb() = default;

  // Applies one physical element.  Fails (without modifying the TDB) if the
  // element is inconsistent with the current instance:
  //  - adjust whose target event ⟨p, Vs, Vold⟩ is absent;
  //  - insert with Vs before the stable point;
  //  - adjust with Vold or Ve before the stable point;
  //  - stable that regresses is ignored (allowed; it adds no information).
  Status Apply(const StreamElement& element);

  // Applies a whole prefix; LM_CHECK-fails on invalid elements.  This is the
  // paper's tdb(S, i) for trusted inputs.
  static Tdb Reconstitute(const ElementSequence& prefix);

  // Multiset equality of events (the stable watermark is not part of the
  // logical content).  S[i] ≡ U[j] iff their TDBs are Equal.
  bool Equals(const Tdb& other) const;

  // Total number of events (with multiplicity).
  int64_t EventCount() const { return total_count_; }
  // Number of distinct events.
  int64_t DistinctEventCount() const {
    return static_cast<int64_t>(events_.size());
  }

  // Multiplicity of `event` in the multiset.
  int64_t CountOf(const Event& event) const;

  // All (Ve, multiplicity) pairs for events with the given (Vs, payload),
  // ordered by Ve.
  std::vector<std::pair<Timestamp, int64_t>> EndTimesFor(
      const VsPayload& key) const;

  // True if no two distinct events share (Vs, payload) — the key property
  // assumed by cases R2 and R3.
  bool VsPayloadIsKey() const;

  // Latest stable point applied (kMinTimestamp if none).
  Timestamp stable_point() const { return stable_point_; }

  // Freeze status of `event` under the current stable point.
  FreezeStatus Classify(const Event& event) const {
    return ClassifyFreeze(event.vs, event.ve, stable_point_);
  }

  // Invokes fn(event, multiplicity) in (Vs, payload, Ve) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [event, count] : events_) fn(event, count);
  }

  // All events (expanded by multiplicity), in (Vs, payload, Ve) order.
  std::vector<Event> ToVector() const;

  std::string ToString() const;

 private:
  std::map<Event, int64_t, EventLess> events_;
  int64_t total_count_ = 0;
  Timestamp stable_point_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_TEMPORAL_TDB_H_
