// Event: one row of the temporal database — ⟨payload p, Vs, Ve⟩.
//
// The lifetime [Vs, Ve) is the period over which the event is active and
// contributes to query output (Sec. III-A).

#ifndef LMERGE_TEMPORAL_EVENT_H_
#define LMERGE_TEMPORAL_EVENT_H_

#include <string>

#include "common/row.h"
#include "common/timestamp.h"

namespace lmerge {

struct Event {
  Row payload;
  Timestamp vs = 0;
  Timestamp ve = kInfinity;

  Event() = default;
  Event(Row p, Timestamp start, Timestamp end)
      : payload(std::move(p)), vs(start), ve(end) {}

  std::string ToString() const {
    return "<" + payload.ToString() + ", [" + TimestampToString(vs) + ", " +
           TimestampToString(ve) + ")>";
  }

  friend bool operator==(const Event& a, const Event& b) {
    return a.vs == b.vs && a.ve == b.ve && a.payload == b.payload;
  }
};

// Total order on events: (Vs, payload, Ve).  This matches the key order of
// the in2t/in3t top tier, so range scans by Vs visit events in this order.
struct EventLess {
  bool operator()(const Event& a, const Event& b) const {
    if (a.vs != b.vs) return a.vs < b.vs;
    const int c = a.payload.Compare(b.payload);
    if (c != 0) return c < 0;
    return a.ve < b.ve;
  }
};

// The (Vs, payload) portion of an event: the key the R2..R4 algorithms index
// on.  Under properties R2/R3 this pair is a key of every prefix TDB.
struct VsPayload {
  Timestamp vs = 0;
  Row payload;

  VsPayload() = default;
  VsPayload(Timestamp start, Row p) : vs(start), payload(std::move(p)) {}

  friend bool operator==(const VsPayload& a, const VsPayload& b) {
    return a.vs == b.vs && a.payload == b.payload;
  }
};

// A non-owning view of a (Vs, payload) key; lets indexes be probed without
// copying the payload.
struct VsPayloadRef {
  Timestamp vs;
  const Row* payload;

  VsPayloadRef(Timestamp start, const Row& p) : vs(start), payload(&p) {}
};

struct VsPayloadLess {
  bool operator()(const VsPayload& a, const VsPayload& b) const {
    if (a.vs != b.vs) return a.vs < b.vs;
    return a.payload.Compare(b.payload) < 0;
  }
  bool operator()(const VsPayloadRef& a, const VsPayload& b) const {
    if (a.vs != b.vs) return a.vs < b.vs;
    return a.payload->Compare(b.payload) < 0;
  }
  bool operator()(const VsPayload& a, const VsPayloadRef& b) const {
    if (a.vs != b.vs) return a.vs < b.vs;
    return a.payload.Compare(*b.payload) < 0;
  }
};

}  // namespace lmerge

#endif  // LMERGE_TEMPORAL_EVENT_H_
