#include "temporal/compat.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "temporal/freeze.h"

namespace lmerge {
namespace {

// Collects, per (Vs, payload), the single event of `tdb` (requires the key
// property).
std::map<VsPayload, Event, VsPayloadLess> EventsByKey(const Tdb& tdb) {
  std::map<VsPayload, Event, VsPayloadLess> out;
  tdb.ForEach([&out](const Event& event, int64_t count) {
    LM_CHECK_MSG(count == 1, "R3 compatibility requires (Vs,payload) key");
    const bool inserted =
        out.emplace(VsPayload(event.vs, event.payload), event).second;
    LM_CHECK_MSG(inserted, "R3 compatibility requires (Vs,payload) key");
  });
  return out;
}

}  // namespace

Status CheckR3Compatibility(const std::vector<const Tdb*>& inputs,
                            const Tdb& output) {
  LM_CHECK(!inputs.empty());
  const Timestamp l_out = output.stable_point();

  // C1: L must not exceed the maximum input stable point.
  Timestamp max_lm = kMinTimestamp;
  for (const Tdb* input : inputs) {
    max_lm = std::max(max_lm, input->stable_point());
  }
  if (l_out > max_lm) {
    return Status::FailedPrecondition(
        "C1 violated: output stable " + TimestampToString(l_out) +
        " exceeds max input stable " + TimestampToString(max_lm));
  }

  const auto out_events = EventsByKey(output);
  std::vector<std::map<VsPayload, Event, VsPayloadLess>> in_events;
  in_events.reserve(inputs.size());
  for (const Tdb* input : inputs) in_events.push_back(EventsByKey(*input));

  // C2: what MAY be in the output TDB.
  for (const auto& [key, out_event] : out_events) {
    const FreezeStatus out_status =
        ClassifyFreeze(out_event.vs, out_event.ve, l_out);
    if (out_status == FreezeStatus::kUnfrozen) continue;  // no constraint
    bool supported = false;
    for (size_t m = 0; m < inputs.size(); ++m) {
      auto it = in_events[m].find(key);
      if (it == in_events[m].end()) continue;
      const Event& in_event = it->second;
      const Timestamp lm = inputs[m]->stable_point();
      const FreezeStatus in_status =
          ClassifyFreeze(in_event.vs, in_event.ve, lm);
      if (out_status == FreezeStatus::kHalfFrozen) {
        // Input HF with Lm <= L (output can track future input changes), or
        // input FF with L <= Vm (output end can still be adjusted to Vm).
        if ((in_status == FreezeStatus::kHalfFrozen && lm <= l_out) ||
            (in_status == FreezeStatus::kFullyFrozen &&
             l_out <= in_event.ve)) {
          supported = true;
          break;
        }
      } else {  // output FF: some input must contain the identical FF event
        if (in_status == FreezeStatus::kFullyFrozen &&
            in_event.ve == out_event.ve) {
          supported = true;
          break;
        }
      }
    }
    if (!supported) {
      return Status::FailedPrecondition(
          "C2 violated: output event " + out_event.ToString() + " (" +
          FreezeStatusName(out_status) + ") has no supporting input");
    }
  }

  // C3: what MUST be (representable) in the output TDB.
  // Gather all keys appearing in any input.
  std::map<VsPayload, bool, VsPayloadLess> keys;
  for (const auto& events : in_events) {
    for (const auto& [key, event] : events) keys.emplace(key, true);
  }
  for (const auto& [key, unused] : keys) {
    // Case 1: some input has an FF event for this key.
    const Event* ff_event = nullptr;
    for (size_t m = 0; m < inputs.size(); ++m) {
      auto it = in_events[m].find(key);
      if (it == in_events[m].end()) continue;
      if (ClassifyFreeze(it->second.vs, it->second.ve,
                         inputs[m]->stable_point()) ==
          FreezeStatus::kFullyFrozen) {
        ff_event = &it->second;
        break;
      }
    }
    auto out_it = out_events.find(key);
    if (ff_event != nullptr) {
      if (l_out <= ff_event->vs) continue;  // can still be added to output
      if (ff_event->vs < l_out && l_out <= ff_event->ve) {
        // Output must hold a half-frozen event for this key (adjustable to
        // the frozen end time).
        if (out_it != out_events.end() &&
            ClassifyFreeze(out_it->second.vs, out_it->second.ve, l_out) ==
                FreezeStatus::kHalfFrozen) {
          continue;
        }
        return Status::FailedPrecondition(
            "C3 violated: input FF event " + ff_event->ToString() +
            " requires a half-frozen output event");
      }
      // Ve < L: output must contain the exact event.
      if (out_it != out_events.end() && out_it->second.ve == ff_event->ve) {
        continue;
      }
      return Status::FailedPrecondition(
          "C3 violated: input FF event " + ff_event->ToString() +
          " must appear exactly in the output");
    }
    // Case 2: no FF input event; find HF input with the largest Lm.
    const Event* hf_event = nullptr;
    Timestamp best_lm = kMinTimestamp;
    for (size_t m = 0; m < inputs.size(); ++m) {
      auto it = in_events[m].find(key);
      if (it == in_events[m].end()) continue;
      const Timestamp lm = inputs[m]->stable_point();
      if (ClassifyFreeze(it->second.vs, it->second.ve, lm) ==
              FreezeStatus::kHalfFrozen &&
          (hf_event == nullptr || lm > best_lm)) {
        hf_event = &it->second;
        best_lm = lm;
      }
    }
    if (hf_event == nullptr) continue;  // only unfrozen inputs: no constraint
    if (l_out <= hf_event->vs) continue;  // can still be added
    if (hf_event->vs < l_out && l_out <= best_lm) {
      if (out_it != out_events.end() &&
          ClassifyFreeze(out_it->second.vs, out_it->second.ve, l_out) ==
              FreezeStatus::kHalfFrozen) {
        continue;
      }
    }
    return Status::FailedPrecondition(
        "C3 violated: input HF event " + hf_event->ToString() +
        " (input stable " + TimestampToString(best_lm) +
        ") is not tracked by the output (output stable " +
        TimestampToString(l_out) + ")");
  }
  return Status::Ok();
}

Status CheckR3TrackedCompatibility(const Tdb& leader, const Tdb& output) {
  const Timestamp lm = leader.stable_point();
  const Timestamp l_out = output.stable_point();
  if (l_out > lm) {
    return Status::FailedPrecondition(
        "output stable point exceeds the leader's");
  }
  const auto leader_events = EventsByKey(leader);
  const auto out_events = EventsByKey(output);

  for (const auto& [key, in_event] : leader_events) {
    const FreezeStatus in_status =
        ClassifyFreeze(in_event.vs, in_event.ve, lm);
    auto out_it = out_events.find(key);
    if (in_status == FreezeStatus::kFullyFrozen) {
      if (out_it == out_events.end()) {
        if (l_out <= in_event.vs) continue;  // still addable
        return Status::FailedPrecondition("missing FF event " +
                                          in_event.ToString());
      }
      const FreezeStatus out_status =
          ClassifyFreeze(out_it->second.vs, out_it->second.ve, l_out);
      if (out_status == FreezeStatus::kFullyFrozen &&
          out_it->second.ve != in_event.ve) {
        return Status::FailedPrecondition(
            "FF event mismatch: input " + in_event.ToString() + " vs output " +
            out_it->second.ToString());
      }
      continue;
    }
    if (in_status == FreezeStatus::kHalfFrozen) {
      if (out_it == out_events.end() && l_out > in_event.vs) {
        return Status::FailedPrecondition(
            "half-frozen input event " + in_event.ToString() +
            " has no output event and the output stable point has passed Vs");
      }
    }
  }
  // No fully frozen output event may lack a matching frozen input event.
  for (const auto& [key, out_event] : out_events) {
    if (ClassifyFreeze(out_event.vs, out_event.ve, l_out) !=
        FreezeStatus::kFullyFrozen) {
      continue;
    }
    auto in_it = leader_events.find(key);
    if (in_it == leader_events.end() || in_it->second.ve != out_event.ve ||
        ClassifyFreeze(in_it->second.vs, in_it->second.ve, lm) !=
            FreezeStatus::kFullyFrozen) {
      return Status::FailedPrecondition("unsupported FF output event " +
                                        out_event.ToString());
    }
  }
  return Status::Ok();
}

Status CheckR4TrackedCompatibility(const Tdb& leader, const Tdb& output) {
  const Timestamp lm = leader.stable_point();
  const Timestamp l_out = output.stable_point();
  if (l_out > lm) {
    return Status::FailedPrecondition(
        "output stable point exceeds the leader's");
  }
  // Per (Vs, payload): multiset of FF end times and count of HF events.
  struct KeyState {
    std::map<Timestamp, int64_t> ff;  // Ve -> multiplicity
    int64_t hf = 0;
  };
  auto collect = [](const Tdb& tdb, Timestamp stable) {
    std::map<VsPayload, KeyState, VsPayloadLess> out;
    tdb.ForEach([&out, stable](const Event& event, int64_t count) {
      KeyState& state = out[VsPayload(event.vs, event.payload)];
      switch (ClassifyFreeze(event.vs, event.ve, stable)) {
        case FreezeStatus::kFullyFrozen:
          state.ff[event.ve] += count;
          break;
        case FreezeStatus::kHalfFrozen:
          state.hf += count;
          break;
        case FreezeStatus::kUnfrozen:
          break;
      }
    });
    return out;
  };
  const auto in_state = collect(leader, lm);
  const auto out_state = collect(output, l_out);

  for (const auto& [key, state] : in_state) {
    // Only keys whose Vs the *output* stable point has passed constrain the
    // output; younger keys can still be added later.
    if (l_out <= key.vs) continue;
    auto it = out_state.find(key);
    const KeyState empty;
    const KeyState& out_key_state =
        it == out_state.end() ? empty : it->second;
    // Every input-FF end time that is also FF for the output must be present
    // with equal multiplicity; input-FF end times the output still treats as
    // adjustable (>= l_out) need only be covered by HF capacity.
    for (const auto& [ve, count] : state.ff) {
      if (ve < l_out) {
        auto ff_it = out_key_state.ff.find(ve);
        const int64_t have =
            ff_it == out_key_state.ff.end() ? 0 : ff_it->second;
        if (have != count) {
          return Status::FailedPrecondition(
              "FF multiset mismatch at " + key.payload.ToString() + " Vs=" +
              TimestampToString(key.vs) + " Ve=" + TimestampToString(ve) +
              ": input x" + std::to_string(count) + " output x" +
              std::to_string(have));
        }
      }
    }
    // Equal total (FF+HF) population once the key is half frozen on both
    // sides: the number of events per key is frozen at half-freeze time.
    int64_t in_total = state.hf;
    for (const auto& [ve, count] : state.ff) in_total += count;
    int64_t out_total = out_key_state.hf;
    for (const auto& [ve, count] : out_key_state.ff) out_total += count;
    if (in_total != out_total) {
      return Status::FailedPrecondition(
          "event count mismatch at " + key.payload.ToString() + " Vs=" +
          TimestampToString(key.vs) + ": input " + std::to_string(in_total) +
          " output " + std::to_string(out_total));
    }
  }
  // No FF output event without input support.
  for (const auto& [key, state] : out_state) {
    for (const auto& [ve, count] : state.ff) {
      auto it = in_state.find(key);
      const int64_t have =
          (it == in_state.end() || it->second.ff.find(ve) == it->second.ff.end())
              ? 0
              : it->second.ff.at(ve);
      if (have < count && ve < lm) {
        return Status::FailedPrecondition(
            "unsupported FF output events at " + key.payload.ToString() +
            " Vs=" + TimestampToString(key.vs) + " Ve=" +
            TimestampToString(ve));
      }
    }
  }
  return Status::Ok();
}

}  // namespace lmerge
