// Input/output compatibility checkers for LMerge (Sec. III-D).
//
// Compatibility is the paper's correctness criterion: output prefix O[j] is
// compatible with mutually consistent input prefixes {I_1[k_1],...,I_n[k_n]}
// if, however the inputs are consistently extended, the output can be
// extended to be equivalent to them all.  For case R3 — arbitrary order,
// adjusts allowed, (Vs, payload) a key of every prefix TDB — the paper gives
// exact conditions C1, C2, C3 over the reconstituted TDBs and stable points.
// These checkers implement those conditions literally and are used by unit
// and property tests to validate every LMerge algorithm after each step.

#ifndef LMERGE_TEMPORAL_COMPAT_H_
#define LMERGE_TEMPORAL_COMPAT_H_

#include <vector>

#include "common/status.h"
#include "temporal/tdb.h"

namespace lmerge {

// Checks conditions C1-C3 of Sec. III-D.  `inputs` are the reconstituted
// input prefixes (each carrying its own stable point L_m); `output` is the
// reconstituted output prefix (carrying L).  Requires (Vs, payload) to be a
// key of every TDB involved.  Returns OK iff the output is compatible.
Status CheckR3Compatibility(const std::vector<const Tdb*>& inputs,
                            const Tdb& output);

// The simplified condition that holds when the output stable point tracks
// the maximum input stable point (end of Sec. III-D): the output and the
// leading input must have the same set of fully frozen events, and their
// half-frozen events must match on (Vs, payload).  `leader` must be an input
// whose stable point equals the maximum over all inputs.
Status CheckR3TrackedCompatibility(const Tdb& leader, const Tdb& output);

// The R4 (multiset) analogue: the output must contain all fully frozen
// events of the leader with equal multiplicity, and an equal number of
// half-frozen events per (Vs, payload).
Status CheckR4TrackedCompatibility(const Tdb& leader, const Tdb& output);

}  // namespace lmerge

#endif  // LMERGE_TEMPORAL_COMPAT_H_
