// CountingMerge — the trivial merge sketched in Sec. I: "keep a count on
// each input, and let the output follow the stream with the largest count."
//
// Correct only when every input presents the exact same elements in the
// exact same order and no input ever detaches/re-attaches.  It is included
// as an executable strawman: unit tests demonstrate that it duplicates or
// omits elements under disorder and under the failure scenarios that
// motivate LMerge.

#ifndef LMERGE_CORE_COUNTING_MERGE_H_
#define LMERGE_CORE_COUNTING_MERGE_H_

#include <vector>

#include "core/merge_algorithm.h"

namespace lmerge {

class CountingMerge : public MergeAlgorithm {
 public:
  CountingMerge(int num_streams, ElementSink* sink)
      : MergeAlgorithm(num_streams, sink),
        counts_(static_cast<size_t>(num_streams), 0) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR4; }

  Status OnInsert(int stream, const StreamElement& element) override {
    Deliver(stream, element);
    return Status::Ok();
  }
  Status OnAdjust(int stream, const StreamElement& element) override {
    Deliver(stream, element);
    return Status::Ok();
  }
  void OnStable(int stream, Timestamp t) override {
    Deliver(stream, StreamElement::Stable(t));
  }

  int AddStream() override {
    counts_.push_back(0);
    return MergeAlgorithm::AddStream();
  }

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this)) +
           static_cast<int64_t>(counts_.capacity() * sizeof(int64_t));
  }

 private:
  void Deliver(int stream, const StreamElement& element) {
    int64_t& count = counts_[static_cast<size_t>(stream)];
    ++count;
    if (count > emitted_) {
      // This stream is ahead of everything emitted so far: follow it.
      switch (element.kind()) {
        case ElementKind::kInsert:
          EmitInsert(element.payload(), element.vs(), element.ve());
          break;
        case ElementKind::kAdjust:
          EmitAdjust(element.payload(), element.vs(), element.v_old(),
                     element.ve());
          break;
        case ElementKind::kStable:
          if (element.stable_time() > max_stable_) {
            max_stable_ = element.stable_time();
          }
          EmitStable(element.stable_time());
          break;
      }
      ++emitted_;
    } else {
      CountDrop();
    }
  }

  std::vector<int64_t> counts_;
  int64_t emitted_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_COUNTING_MERGE_H_
