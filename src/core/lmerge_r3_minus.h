// LMR3- (Sec. VI-A, variant 3): the simpler baseline algorithm for case R3.
//
// Events from each input stream are kept in a *separate* ordered index, with
// one more index for the events emitted on the output.  The output index is
// needed (1) to test whether an element was previously output, and (2) to
// adjust prior output before propagating a stable() element.  The design is
// easier to write than in2t but duplicates payloads across all the per-input
// indexes and performs multiple tree lookups per element — which is exactly
// why its memory grows linearly with the number of inputs in Fig. 2/7 while
// LMR3+ stays flat.

#ifndef LMERGE_CORE_LMERGE_R3_MINUS_H_
#define LMERGE_CORE_LMERGE_R3_MINUS_H_

#include <memory>
#include <vector>

#include "container/rbtree.h"
#include "core/merge_algorithm.h"
#include "temporal/event.h"

namespace lmerge {

class LMergeR3Minus : public MergeAlgorithm {
 public:
  LMergeR3Minus(int num_streams, ElementSink* sink)
      : MergeAlgorithm(num_streams, sink) {
    for (int s = 0; s < num_streams; ++s) inputs_.push_back(MakeIndex());
  }

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR3; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  // Deliberately keeps the default per-element ProcessBatch: LMR3- is the
  // paper's baseline and should not gain batched-path optimizations.
  Status ValidateElement(const StreamElement& element) const override {
    if (element.is_stable()) return Status::Ok();
    if (element.ve() < element.vs()) {
      return Status::InvalidArgument(
          (element.is_insert() ? std::string("insert with Ve < Vs: ")
                               : std::string("adjust with Ve < Vs: ")) +
          element.ToString());
    }
    return Status::Ok();
  }

  int AddStream() override {
    inputs_.push_back(MakeIndex());
    return MergeAlgorithm::AddStream();
  }

  int64_t StateBytes() const override;

 private:
  // (Vs, payload) -> current Ve; every index owns its own payload copies.
  struct Index {
    RbTree<VsPayload, Timestamp, VsPayloadLess> tree;
    int64_t payload_bytes = 0;
  };

  static std::unique_ptr<Index> MakeIndex() {
    return std::make_unique<Index>();
  }
  static void Put(Index& index, Timestamp vs, const Row& payload,
                  Timestamp ve);

  std::vector<std::unique_ptr<Index>> inputs_;
  Index output_;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R3_MINUS_H_
