// Algorithm R0 (Sec. IV-A): inputs contain only insert() and stable()
// elements with strictly increasing Vs.  O(1) time and space: track the
// maximum Vs and maximum stable point across all inputs; forward an element
// iff it advances the corresponding watermark.

#ifndef LMERGE_CORE_LMERGE_R0_H_
#define LMERGE_CORE_LMERGE_R0_H_

#include "common/checkpoint.h"
#include "core/merge_algorithm.h"

namespace lmerge {

class LMergeR0 : public MergeAlgorithm, public Checkpointable {
 public:
  LMergeR0(int num_streams, ElementSink* sink)
      : MergeAlgorithm(num_streams, sink) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR0; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  // Batched run-merge: the whole batch is one tight watermark loop (the
  // inputs are sorted runs), with no per-element virtual dispatch.
  Status ProcessBatch(int stream,
                      std::span<const StreamElement> batch) override;
  Status ValidateElement(const StreamElement& element) const override;

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this));
  }

  Checkpointable* checkpointable() override { return this; }
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;

  Timestamp max_vs() const { return max_vs_; }

 private:
  Timestamp max_vs_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R0_H_
