// Factory: constructs the right MergeAlgorithm for an AlgorithmCase — the
// run-time end of the property-driven selection of Sec. IV-G.

#ifndef LMERGE_CORE_FACTORY_H_
#define LMERGE_CORE_FACTORY_H_

#include <memory>
#include <string>

#include "core/merge_algorithm.h"
#include "core/merge_policy.h"

namespace lmerge {

// Which concrete implementation to use; distinguishes the in2t algorithm
// (LMR3+) from the per-input-index baseline (LMR3-) for case R3.
enum class MergeVariant {
  kLMR0,
  kLMR1,
  kLMR2,
  kLMR3Plus,
  kLMR3Minus,
  kLMR4,
  kCounting,
};

const char* MergeVariantName(MergeVariant variant);

// The preferred variant for streams with the given properties.
MergeVariant VariantForCase(AlgorithmCase algorithm_case);

std::unique_ptr<MergeAlgorithm> CreateMergeAlgorithm(
    MergeVariant variant, int num_streams, ElementSink* sink,
    MergePolicy policy = MergePolicy::Default());

// Derives properties (meet over inputs), chooses the case, and builds it.
std::unique_ptr<MergeAlgorithm> CreateMergeAlgorithmForProperties(
    const std::vector<StreamProperties>& input_properties, int num_streams,
    ElementSink* sink, MergePolicy policy = MergePolicy::Default());

}  // namespace lmerge

#endif  // LMERGE_CORE_FACTORY_H_
