// Algorithm R2 (Sec. IV-C): insert-only inputs with non-decreasing Vs where
// elements sharing a Vs may appear in *different* orders on different inputs
// (e.g., grouped aggregation emits its groups in nondeterministic order).
// Requires (Vs, payload) to be a key of every prefix TDB.  State: a hash
// table over the payloads seen with Vs == MaxVs; an insert is forwarded iff
// its payload is not yet present.  The table is cleared whenever MaxVs
// advances, so space is O(g · p) where g is the number of events sharing the
// current maximum timestamp.

#ifndef LMERGE_CORE_LMERGE_R2_H_
#define LMERGE_CORE_LMERGE_R2_H_

#include "common/checkpoint.h"
#include "container/hash_table.h"
#include "core/merge_algorithm.h"

namespace lmerge {

class LMergeR2 : public MergeAlgorithm, public Checkpointable {
 public:
  LMergeR2(int num_streams, ElementSink* sink)
      : MergeAlgorithm(num_streams, sink) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR2; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  Status ValidateElement(const StreamElement& element) const override {
    if (element.is_adjust()) {
      return Status::FailedPrecondition(
          "LMergeR2 does not support adjust elements: " + element.ToString());
    }
    return Status::Ok();
  }

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this)) + seen_.SlotBytes() +
           payload_bytes_;
  }

  Checkpointable* checkpointable() override { return this; }
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;

  Timestamp max_vs() const { return max_vs_; }

 private:
  Timestamp max_vs_ = kMinTimestamp;
  HashTable<Row, char, RowHash> seen_;
  int64_t payload_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R2_H_
