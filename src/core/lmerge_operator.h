// LMergeOperator: LMerge as a composable query-graph operator.
//
// Wraps a MergeAlgorithm (chosen by variant or derived from input stream
// properties) and adds:
//  * the joining/leaving-stream protocol of Sec. V-B — a stream attached at
//    runtime declares a join time t at which its TDB becomes trustworthy; it
//    is marked "joined" once the output stable point reaches t, and only
//    joined streams may drive the output stable point forward;
//  * feedback signalling of Sec. V-D — whenever the output stable point
//    advances, the operator (optionally) propagates the new horizon upstream
//    so slower plans can fast-forward past work that no longer matters.

#ifndef LMERGE_CORE_LMERGE_OPERATOR_H_
#define LMERGE_CORE_LMERGE_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/checkpoint.h"
#include "core/factory.h"
#include "core/merge_algorithm.h"
#include "core/merge_policy.h"
#include "operators/operator.h"

namespace lmerge {

class LMergeOperator : public Operator, public Checkpointable {
 public:
  LMergeOperator(std::string name, int initial_inputs, MergeVariant variant,
                 MergePolicy policy = MergePolicy::Default(),
                 bool feedback_enabled = false);

  // Builds the variant implied by the inputs' compile-time properties.
  LMergeOperator(std::string name,
                 const std::vector<StreamProperties>& input_properties,
                 MergePolicy policy = MergePolicy::Default(),
                 bool feedback_enabled = false);

  // Attaches a new input stream at runtime.  The stream guarantees it
  // produces the correct TDB for every event alive at or after `join_time`.
  // Returns the new input port.
  int AttachInput(Timestamp join_time);

  // Detaches an input stream; its residual index state is reclaimed lazily
  // as events freeze.
  void DetachInput(int port);

  // Whether the stream on `port` has been marked joined (the output stable
  // point reached its join time): from then on LMerge tolerates the
  // simultaneous failure of all other inputs.
  bool InputJoined(int port) const;
  bool InputActive(int port) const;
  int active_input_count() const;

  MergeAlgorithm& algorithm() { return *algorithm_; }
  const MergeAlgorithm& algorithm() const { return *algorithm_; }

  int64_t StateBytes() const override { return algorithm_->StateBytes(); }

  StreamProperties DeriveProperties(
      const std::vector<StreamProperties>& inputs) const override;

  bool feedback_enabled() const { return feedback_enabled_; }

  // Whether the wrapped algorithm supports checkpointing (LMR3+, LMR4).
  bool SupportsCheckpoint() const {
    return algorithm_->checkpointable() != nullptr;
  }

  // Checkpointable: snapshots the attach/detach registry plus the wrapped
  // algorithm's state.  Requires SupportsCheckpoint(); the restoring
  // operator must wrap the same algorithm variant and policy.
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;

 protected:
  void OnElement(int port, const StreamElement& element) override;

 private:
  // Routes the algorithm's output into Operator::Emit.
  class OutputAdapter : public ElementSink {
   public:
    explicit OutputAdapter(LMergeOperator* op) : op_(op) {}
    void OnElement(const StreamElement& element) override {
      op_->Emit(element);
    }

   private:
    LMergeOperator* op_;
  };

  struct InputState {
    bool joined = true;
    bool detached = false;
    Timestamp join_time = kMinTimestamp;
  };

  void RefreshJoinedFlags();
  void MaybeSendFeedback();

  OutputAdapter adapter_;
  std::unique_ptr<MergeAlgorithm> algorithm_;
  std::vector<InputState> inputs_;
  bool feedback_enabled_;
  Timestamp last_feedback_sent_ = kMinTimestamp;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_OPERATOR_H_
