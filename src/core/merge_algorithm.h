// MergeAlgorithm: the common interface of the LMerge algorithm family
// (Sec. IV).  Concrete implementations: LMergeR0, LMergeR1, LMergeR2,
// LMergeR3 (in2t), LMergeR4 (in3t), LMergeR3Minus (baseline), CountingMerge
// (the strawman of Sec. I).
//
// An algorithm is fed elements tagged with a dense input-stream id and emits
// output elements through an ElementSink.  Streams can be added and removed
// at runtime (Sec. V-B); the LMergeOperator wrapper implements the
// join/leave protocol on top of these hooks.

#ifndef LMERGE_CORE_MERGE_ALGORITHM_H_
#define LMERGE_CORE_MERGE_ALGORITHM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/timestamp.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "stream/sink.h"

namespace lmerge {

class Checkpointable;

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Counts of elements emitted by the algorithm; the paper's "output size"
// metric and the quantity bounded by Theorem 1.
struct MergeOutputStats {
  int64_t inserts_out = 0;
  int64_t adjusts_out = 0;
  int64_t stables_out = 0;
  int64_t inserts_in = 0;
  int64_t adjusts_in = 0;
  int64_t stables_in = 0;
  // Elements dropped because they arrived behind the output stable point
  // (lagging streams); cheap drops are why lag *increases* throughput in
  // Fig. 5.
  int64_t dropped = 0;
};

// Per-input-stream view of the same counters, attributed to the stream
// whose element was being processed.  `contributed` counts output inserts
// caused by this input's elements (first-delivery wins), so the sum over
// all inputs equals stats().inserts_out — the merged output TDB size.
struct PerInputStats {
  int64_t inserts_in = 0;
  int64_t adjusts_in = 0;
  int64_t stables_in = 0;
  int64_t dropped = 0;
  int64_t contributed = 0;          // output inserts this input triggered
  int64_t adjusts_contributed = 0;  // output adjusts this input triggered
  // Highest stable point this input has announced (kMinTimestamp before the
  // first stable).  Output lag for the input = max over inputs of this,
  // minus this (DBLog-style per-source progress watermark).
  Timestamp stable_point = kMinTimestamp;

  int64_t elements_in() const { return inserts_in + adjusts_in + stables_in; }
};

class MergeAlgorithm {
 public:
  MergeAlgorithm(int num_streams, ElementSink* sink)
      : sink_(sink),
        active_(static_cast<size_t>(num_streams), true),
        per_input_(static_cast<size_t>(num_streams)) {
    LM_CHECK(num_streams >= 1);
    LM_CHECK(sink != nullptr);
  }
  virtual ~MergeAlgorithm() = default;

  MergeAlgorithm(const MergeAlgorithm&) = delete;
  MergeAlgorithm& operator=(const MergeAlgorithm&) = delete;

  virtual AlgorithmCase algorithm_case() const = 0;

  // Dispatches on element kind.  Insert/adjust may fail (e.g., adjust on an
  // algorithm that does not support revisions); stable never fails.
  Status OnElement(int stream, const StreamElement& element)
      LM_MERGE_THREAD_ONLY {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    LM_DCHECK(active_[static_cast<size_t>(stream)]);
    CountIn(stream, element);
    switch (element.kind()) {
      case ElementKind::kInsert:
        return OnInsert(stream, element);
      case ElementKind::kAdjust:
        return OnAdjust(stream, element);
      case ElementKind::kStable:
        OnStable(stream, element.stable_time());
        return Status::Ok();
    }
    return Status::Internal("unknown element kind");
  }

  // Delivers a batch of elements from one stream.  Equivalent to calling
  // OnElement per element in order, stopping at the first failure (elements
  // before the failing one stay applied).  Overrides amortize index probes
  // and scan work across the batch but must produce byte-identical output
  // and stats.
  virtual Status ProcessBatch(int stream, std::span<const StreamElement> batch)
      LM_MERGE_THREAD_ONLY LM_HOT_PATH {
    for (const StreamElement& element : batch) {
      const Status status = OnElement(stream, element);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  // Pre-validation for untrusted entry points: returns exactly the error
  // OnElement would return for this element, or Ok.  Must be STATELESS —
  // it depends only on the element, never on mutable merge state — so
  // concurrent producers may call it without synchronization.  An element
  // that passes never fails asynchronously inside the merge thread.
  virtual Status ValidateElement(const StreamElement& element) const {
    (void)element;
    return Status::Ok();
  }

  virtual Status OnInsert(int stream, const StreamElement& element)
      LM_MERGE_THREAD_ONLY = 0;
  virtual Status OnAdjust(int stream, const StreamElement& element)
      LM_MERGE_THREAD_ONLY = 0;
  virtual void OnStable(int stream, Timestamp t) LM_MERGE_THREAD_ONLY = 0;

  // Registers a new input stream; returns its id.  The stream must only
  // deliver elements consistent with the reference stream from its join
  // point onward (Sec. V-B).
  virtual int AddStream() LM_MERGE_THREAD_ONLY {
    active_.push_back(true);
    per_input_.emplace_back();
    return stream_count() - 1;
  }

  // Marks a stream as detached.  Its state is reclaimed lazily as events
  // freeze; the algorithm never consults a detached stream again.
  virtual void RemoveStream(int stream) LM_MERGE_THREAD_ONLY {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    active_[static_cast<size_t>(stream)] = false;
  }

  // Seeds stream `stream`'s per-input view from the output's own view.  The
  // merged output is itself a valid physical presentation (Sec. II-4/5), so
  // a replica that restores a checkpoint and then consumes the original's
  // merged output as an input must treat that input as the *continuation*
  // of the snapshot's output stream: wherever the snapshot recorded an
  // output-side view, the feed stream implicitly stands at the same view —
  // not at the empty one, which would make the first stable() retract
  // still-alive pre-cut events.  Default: nothing to seed (algorithms whose
  // state carries no per-stream views).
  virtual Status AdoptOutputView(int stream) LM_MERGE_THREAD_ONLY {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    (void)stream;
    return Status::Ok();
  }

  int stream_count() const { return static_cast<int>(active_.size()); }
  bool stream_active(int stream) const {
    return active_[static_cast<size_t>(stream)];
  }
  int active_stream_count() const {
    int n = 0;
    for (const bool a : active_) n += a ? 1 : 0;
    return n;
  }

  // Bytes of state the algorithm currently holds (indexes + payloads); the
  // memory metric of Sec. VI and Table IV.  With interned payloads a rep
  // referenced from many index nodes is charged once.
  virtual int64_t StateBytes() const = 0;

  // The same metric under the pre-interning accounting model, where every
  // index node owns a private payload copy.  Algorithms whose indexes share
  // interned reps override this; for the rest (including LMR3-, which
  // really does hold private copies) both models coincide.
  virtual int64_t StateBytesUnshared() const { return StateBytes(); }

  // Non-null when the algorithm supports state snapshots (see
  // common/checkpoint.h); used by LMergeOperator for jumpstart/cutover.
  virtual Checkpointable* checkpointable() { return nullptr; }
  const Checkpointable* checkpointable() const {
    return const_cast<MergeAlgorithm*>(this)->checkpointable();
  }

  Timestamp max_stable() const { return max_stable_; }
  const MergeOutputStats& stats() const { return stats_; }
  const std::vector<PerInputStats>& per_input_stats() const {
    return per_input_;
  }
  // Index-structure probes issued (R3/R4 SameVsPayload and actionable-scan
  // lookups); the work term behind the Sec. VI runtime curves.
  int64_t index_probes() const { return index_probes_; }

  // Publishes stats(), per_input_stats(), index_probes(), and max_stable()
  // as "merge."-prefixed gauges (see docs/OBSERVABILITY.md for the
  // catalog).  Call from the merge thread (e.g. via
  // ConcurrentMerger::CallOnMergeThread): reads the same plain counters the
  // hot path mutates.
  void ExportMetrics(obs::MetricsRegistry* registry) const
      LM_MERGE_THREAD_ONLY;

 protected:
  void EmitInsert(const Row& payload, Timestamp vs, Timestamp ve) {
    ++stats_.inserts_out;
    if (current_stream_ >= 0) {
      ++per_input_[static_cast<size_t>(current_stream_)].contributed;
    }
    sink_->OnElement(StreamElement::Insert(payload, vs, ve));
  }
  void EmitAdjust(const Row& payload, Timestamp vs, Timestamp v_old,
                  Timestamp ve) {
    ++stats_.adjusts_out;
    if (current_stream_ >= 0) {
      ++per_input_[static_cast<size_t>(current_stream_)].adjusts_contributed;
    }
    sink_->OnElement(StreamElement::Adjust(payload, vs, v_old, ve));
  }
  void EmitStable(Timestamp t) {
    ++stats_.stables_out;
    sink_->OnElement(StreamElement::Stable(t));
  }
  void CountDrop() {
    ++stats_.dropped;
    if (current_stream_ >= 0) {
      ++per_input_[static_cast<size_t>(current_stream_)].dropped;
    }
  }
  void CountIndexProbe() { ++index_probes_; }

  // Input-side stats bump for ProcessBatch overrides that bypass OnElement;
  // keeps stats byte-identical with element-wise delivery.  Also anchors
  // attribution: emissions and drops between this call and the next are
  // credited to `stream` (see EmitInsert/CountDrop).
  void CountIn(int stream, const StreamElement& element) {
    current_stream_ = stream;
    PerInputStats& in = per_input_[static_cast<size_t>(stream)];
    switch (element.kind()) {
      case ElementKind::kInsert:
        ++stats_.inserts_in;
        ++in.inserts_in;
        break;
      case ElementKind::kAdjust:
        ++stats_.adjusts_in;
        ++in.adjusts_in;
        break;
      case ElementKind::kStable:
        ++stats_.stables_in;
        ++in.stables_in;
        if (element.stable_time() > in.stable_point) {
          in.stable_point = element.stable_time();
        }
        break;
    }
  }

  Timestamp max_stable_ = kMinTimestamp;

 private:
  ElementSink* sink_;
  std::vector<bool> active_;
  MergeOutputStats stats_;
  std::vector<PerInputStats> per_input_;
  int64_t index_probes_ = 0;
  // The input whose element is being processed; -1 outside delivery (e.g.
  // emissions from RestoreState are unattributed).
  int current_stream_ = -1;
};

// ---------------------------------------------------------------------------
// Aggregated views over a partitioned merge's shard algorithm instances
// (engine/partitioned.h).  Each input element is routed to exactly one shard
// except stable() elements, which are broadcast to every shard — so routed
// counters (inserts/adjusts in, drops, contributions, emissions) SUM across
// shards while broadcast counters (stables_in, stable_point) take the MIN:
// the value every shard has applied.  The min is the replay-safe reading —
// a cut certificate must not claim a stable point some shard has not
// consumed yet — and at quiesce all shards have applied every stable, so
// the min equals the single-threaded value.  The output stable count
// belongs to the aggregator, not any shard.
// Every shard must have the same stream registry (the router fans AddStream
// and RemoveStream to all of them).
// ---------------------------------------------------------------------------

// Output totals across shards.  `stables_out` is the aggregator's own
// emitted-stable count (shard-emitted stables are swallowed by the
// min-frontier aggregation and never reach the output).
MergeOutputStats AggregateShardStats(std::span<MergeAlgorithm* const> shards,
                                     int64_t stables_out);

// Per-input table across shards, same sum/min rules per row.
std::vector<PerInputStats> AggregateShardPerInputStats(
    std::span<MergeAlgorithm* const> shards);

// The partitioned counterpart of MergeAlgorithm::ExportMetrics: publishes
// the aggregated "merge."-prefixed gauges.  `output_stable` is the
// aggregator's min-across-frontiers stable point.
void ExportAggregatedMergeMetrics(std::span<MergeAlgorithm* const> shards,
                                  int64_t stables_out, Timestamp output_stable,
                                  obs::MetricsRegistry* registry);

}  // namespace lmerge

#endif  // LMERGE_CORE_MERGE_ALGORITHM_H_
