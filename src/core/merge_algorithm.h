// MergeAlgorithm: the common interface of the LMerge algorithm family
// (Sec. IV).  Concrete implementations: LMergeR0, LMergeR1, LMergeR2,
// LMergeR3 (in2t), LMergeR4 (in3t), LMergeR3Minus (baseline), CountingMerge
// (the strawman of Sec. I).
//
// An algorithm is fed elements tagged with a dense input-stream id and emits
// output elements through an ElementSink.  Streams can be added and removed
// at runtime (Sec. V-B); the LMergeOperator wrapper implements the
// join/leave protocol on top of these hooks.

#ifndef LMERGE_CORE_MERGE_ALGORITHM_H_
#define LMERGE_CORE_MERGE_ALGORITHM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "properties/properties.h"
#include "stream/element.h"
#include "stream/sink.h"

namespace lmerge {

class Checkpointable;

// Counts of elements emitted by the algorithm; the paper's "output size"
// metric and the quantity bounded by Theorem 1.
struct MergeOutputStats {
  int64_t inserts_out = 0;
  int64_t adjusts_out = 0;
  int64_t stables_out = 0;
  int64_t inserts_in = 0;
  int64_t adjusts_in = 0;
  int64_t stables_in = 0;
  // Elements dropped because they arrived behind the output stable point
  // (lagging streams); cheap drops are why lag *increases* throughput in
  // Fig. 5.
  int64_t dropped = 0;
};

class MergeAlgorithm {
 public:
  MergeAlgorithm(int num_streams, ElementSink* sink)
      : sink_(sink), active_(static_cast<size_t>(num_streams), true) {
    LM_CHECK(num_streams >= 1);
    LM_CHECK(sink != nullptr);
  }
  virtual ~MergeAlgorithm() = default;

  MergeAlgorithm(const MergeAlgorithm&) = delete;
  MergeAlgorithm& operator=(const MergeAlgorithm&) = delete;

  virtual AlgorithmCase algorithm_case() const = 0;

  // Dispatches on element kind.  Insert/adjust may fail (e.g., adjust on an
  // algorithm that does not support revisions); stable never fails.
  Status OnElement(int stream, const StreamElement& element) {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    LM_DCHECK(active_[static_cast<size_t>(stream)]);
    switch (element.kind()) {
      case ElementKind::kInsert:
        ++stats_.inserts_in;
        return OnInsert(stream, element);
      case ElementKind::kAdjust:
        ++stats_.adjusts_in;
        return OnAdjust(stream, element);
      case ElementKind::kStable:
        ++stats_.stables_in;
        OnStable(stream, element.stable_time());
        return Status::Ok();
    }
    return Status::Internal("unknown element kind");
  }

  // Delivers a batch of elements from one stream.  Equivalent to calling
  // OnElement per element in order, stopping at the first failure (elements
  // before the failing one stay applied).  Overrides amortize index probes
  // and scan work across the batch but must produce byte-identical output
  // and stats.
  virtual Status ProcessBatch(int stream,
                              std::span<const StreamElement> batch) {
    for (const StreamElement& element : batch) {
      const Status status = OnElement(stream, element);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }

  // Pre-validation for untrusted entry points: returns exactly the error
  // OnElement would return for this element, or Ok.  Must be STATELESS —
  // it depends only on the element, never on mutable merge state — so
  // concurrent producers may call it without synchronization.  An element
  // that passes never fails asynchronously inside the merge thread.
  virtual Status ValidateElement(const StreamElement& element) const {
    (void)element;
    return Status::Ok();
  }

  virtual Status OnInsert(int stream, const StreamElement& element) = 0;
  virtual Status OnAdjust(int stream, const StreamElement& element) = 0;
  virtual void OnStable(int stream, Timestamp t) = 0;

  // Registers a new input stream; returns its id.  The stream must only
  // deliver elements consistent with the reference stream from its join
  // point onward (Sec. V-B).
  virtual int AddStream() {
    active_.push_back(true);
    return stream_count() - 1;
  }

  // Marks a stream as detached.  Its state is reclaimed lazily as events
  // freeze; the algorithm never consults a detached stream again.
  virtual void RemoveStream(int stream) {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    active_[static_cast<size_t>(stream)] = false;
  }

  int stream_count() const { return static_cast<int>(active_.size()); }
  bool stream_active(int stream) const {
    return active_[static_cast<size_t>(stream)];
  }
  int active_stream_count() const {
    int n = 0;
    for (const bool a : active_) n += a ? 1 : 0;
    return n;
  }

  // Bytes of state the algorithm currently holds (indexes + payloads); the
  // memory metric of Sec. VI and Table IV.  With interned payloads a rep
  // referenced from many index nodes is charged once.
  virtual int64_t StateBytes() const = 0;

  // The same metric under the pre-interning accounting model, where every
  // index node owns a private payload copy.  Algorithms whose indexes share
  // interned reps override this; for the rest (including LMR3-, which
  // really does hold private copies) both models coincide.
  virtual int64_t StateBytesUnshared() const { return StateBytes(); }

  // Non-null when the algorithm supports state snapshots (see
  // common/checkpoint.h); used by LMergeOperator for jumpstart/cutover.
  virtual Checkpointable* checkpointable() { return nullptr; }
  const Checkpointable* checkpointable() const {
    return const_cast<MergeAlgorithm*>(this)->checkpointable();
  }

  Timestamp max_stable() const { return max_stable_; }
  const MergeOutputStats& stats() const { return stats_; }

 protected:
  void EmitInsert(const Row& payload, Timestamp vs, Timestamp ve) {
    ++stats_.inserts_out;
    sink_->OnElement(StreamElement::Insert(payload, vs, ve));
  }
  void EmitAdjust(const Row& payload, Timestamp vs, Timestamp v_old,
                  Timestamp ve) {
    ++stats_.adjusts_out;
    sink_->OnElement(StreamElement::Adjust(payload, vs, v_old, ve));
  }
  void EmitStable(Timestamp t) {
    ++stats_.stables_out;
    sink_->OnElement(StreamElement::Stable(t));
  }
  void CountDrop() { ++stats_.dropped; }

  // Input-side stats bump for ProcessBatch overrides that bypass OnElement;
  // keeps stats byte-identical with element-wise delivery.
  void CountIn(const StreamElement& element) {
    switch (element.kind()) {
      case ElementKind::kInsert:
        ++stats_.inserts_in;
        break;
      case ElementKind::kAdjust:
        ++stats_.adjusts_in;
        break;
      case ElementKind::kStable:
        ++stats_.stables_in;
        break;
    }
  }

  Timestamp max_stable_ = kMinTimestamp;

 private:
  ElementSink* sink_;
  std::vector<bool> active_;
  MergeOutputStats stats_;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_MERGE_ALGORITHM_H_
