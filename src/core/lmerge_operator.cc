#include "core/lmerge_operator.h"

namespace lmerge {

LMergeOperator::LMergeOperator(std::string name, int initial_inputs,
                               MergeVariant variant, MergePolicy policy,
                               bool feedback_enabled)
    : Operator(std::move(name), initial_inputs),
      adapter_(this),
      algorithm_(
          CreateMergeAlgorithm(variant, initial_inputs, &adapter_, policy)),
      inputs_(static_cast<size_t>(initial_inputs)),
      feedback_enabled_(feedback_enabled) {}

LMergeOperator::LMergeOperator(
    std::string name, const std::vector<StreamProperties>& input_properties,
    MergePolicy policy, bool feedback_enabled)
    : LMergeOperator(std::move(name),
                     static_cast<int>(input_properties.size()),
                     VariantForCase(ChooseAlgorithm(input_properties)),
                     policy, feedback_enabled) {}

int LMergeOperator::AttachInput(Timestamp join_time) {
  GrowInputs();
  const int port = algorithm_->AddStream();
  LM_CHECK(port == input_count() - 1);
  InputState state;
  state.join_time = join_time;
  state.joined = algorithm_->max_stable() >= join_time;
  inputs_.push_back(state);
  return port;
}

void LMergeOperator::DetachInput(int port) {
  LM_CHECK(port >= 0 && port < input_count());
  InputState& state = inputs_[static_cast<size_t>(port)];
  if (state.detached) return;
  state.detached = true;
  algorithm_->RemoveStream(port);
}

bool LMergeOperator::InputJoined(int port) const {
  LM_CHECK(port >= 0 && port < input_count());
  return inputs_[static_cast<size_t>(port)].joined;
}

bool LMergeOperator::InputActive(int port) const {
  LM_CHECK(port >= 0 && port < input_count());
  return !inputs_[static_cast<size_t>(port)].detached;
}

int LMergeOperator::active_input_count() const {
  int n = 0;
  for (const InputState& state : inputs_) n += state.detached ? 0 : 1;
  return n;
}

StreamProperties LMergeOperator::DeriveProperties(
    const std::vector<StreamProperties>& inputs) const {
  // The output is one more physical presentation of the same logical stream:
  // it satisfies whatever holds for all inputs jointly.
  if (inputs.empty()) return StreamProperties::None();
  StreamProperties met = inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) met = met.Meet(inputs[i]);
  return met;
}

void LMergeOperator::RefreshJoinedFlags() {
  const Timestamp stable = algorithm_->max_stable();
  for (InputState& state : inputs_) {
    if (!state.joined && stable >= state.join_time) state.joined = true;
  }
}

void LMergeOperator::MaybeSendFeedback() {
  if (!feedback_enabled_) return;
  const Timestamp stable = algorithm_->max_stable();
  if (stable > last_feedback_sent_) {
    last_feedback_sent_ = stable;
    PropagateFeedback(stable);
  }
}

void LMergeOperator::SaveState(Encoder* encoder) const {
  encoder->WriteU32(static_cast<uint32_t>(inputs_.size()));
  for (const InputState& state : inputs_) {
    encoder->WriteU8(state.joined ? 1 : 0);
    encoder->WriteU8(state.detached ? 1 : 0);
    encoder->WriteI64(state.join_time);
  }
  encoder->WriteI64(last_feedback_sent_);
  const Checkpointable* inner = algorithm_->checkpointable();
  LM_CHECK_MSG(inner != nullptr,
               "algorithm variant does not support checkpointing");
  inner->SaveState(encoder);
}

Status LMergeOperator::RestoreState(Decoder* decoder) {
  uint32_t input_count_saved = 0;
  Status status = decoder->ReadU32(&input_count_saved);
  if (!status.ok()) return status;
  std::vector<InputState> inputs(input_count_saved);
  for (uint32_t i = 0; i < input_count_saved; ++i) {
    uint8_t joined = 0;
    uint8_t detached = 0;
    if (!(status = decoder->ReadU8(&joined)).ok()) return status;
    if (!(status = decoder->ReadU8(&detached)).ok()) return status;
    if (!(status = decoder->ReadI64(&inputs[i].join_time)).ok()) {
      return status;
    }
    inputs[i].joined = joined != 0;
    inputs[i].detached = detached != 0;
  }
  if (!(status = decoder->ReadI64(&last_feedback_sent_)).ok()) return status;
  Checkpointable* inner = algorithm_->checkpointable();
  if (inner == nullptr) {
    return Status::FailedPrecondition(
        "algorithm variant does not support checkpointing");
  }
  status = inner->RestoreState(decoder);
  if (!status.ok()) return status;
  // Grow the operator's port registry to the snapshot's width, then adopt
  // the per-input states (including detached flags).
  while (input_count() < static_cast<int>(input_count_saved)) GrowInputs();
  inputs_ = std::move(inputs);
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].detached) algorithm_->RemoveStream(static_cast<int>(i));
  }
  return Status::Ok();
}

void LMergeOperator::OnElement(int port, const StreamElement& element) {
  InputState& state = inputs_[static_cast<size_t>(port)];
  if (state.detached) return;
  if (element.is_stable() && !state.joined) {
    // A not-yet-joined stream may miss events that ended before its join
    // time; letting it drive the output stable point could freeze their
    // absence.  Its stable elements are held back until it joins.
    RefreshJoinedFlags();
    if (!state.joined) return;
  }
  const Status status = algorithm_->OnElement(port, element);
  LM_CHECK_MSG(status.ok(), "%s: %s", name().c_str(),
               status.ToString().c_str());
  RefreshJoinedFlags();
  MaybeSendFeedback();
}

}  // namespace lmerge
