#include "core/merge_algorithm.h"

#include <string>

#include "obs/metrics.h"

namespace lmerge {

void MergeAlgorithm::ExportMetrics(obs::MetricsRegistry* registry) const {
  registry->GetGauge("merge.in.inserts")->Set(stats_.inserts_in);
  registry->GetGauge("merge.in.adjusts")->Set(stats_.adjusts_in);
  registry->GetGauge("merge.in.stables")->Set(stats_.stables_in);
  registry->GetGauge("merge.out.inserts")->Set(stats_.inserts_out);
  registry->GetGauge("merge.out.adjusts")->Set(stats_.adjusts_out);
  registry->GetGauge("merge.out.stables")->Set(stats_.stables_out);
  registry->GetGauge("merge.dropped")->Set(stats_.dropped);
  registry->GetGauge("merge.index_probes")->Set(index_probes_);
  registry->GetGauge("merge.state_bytes")->Set(StateBytes());
  registry->GetGauge("merge.streams")->Set(stream_count());
  registry->GetGauge("merge.streams_active")->Set(active_stream_count());
  // kMinTimestamp (no output stable yet) is exported verbatim; consumers
  // render it as "-inf" (see Timestamp docs).
  registry->GetGauge("merge.stable")->Set(max_stable_);

  for (int s = 0; s < stream_count(); ++s) {
    const PerInputStats& in = per_input_[static_cast<size_t>(s)];
    const std::string prefix = "merge.input." + std::to_string(s) + ".";
    registry->GetGauge(prefix + "inserts_in")->Set(in.inserts_in);
    registry->GetGauge(prefix + "adjusts_in")->Set(in.adjusts_in);
    registry->GetGauge(prefix + "stables_in")->Set(in.stables_in);
    registry->GetGauge(prefix + "elements_in")->Set(in.elements_in());
    registry->GetGauge(prefix + "dropped")->Set(in.dropped);
    registry->GetGauge(prefix + "contributed")->Set(in.contributed);
    registry->GetGauge(prefix + "adjusts_contributed")
        ->Set(in.adjusts_contributed);
    registry->GetGauge(prefix + "stable_point")->Set(in.stable_point);
    registry->GetGauge(prefix + "active")
        ->Set(stream_active(s) ? 1 : 0);
  }
}

}  // namespace lmerge
