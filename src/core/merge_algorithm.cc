#include "core/merge_algorithm.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace lmerge {

void MergeAlgorithm::ExportMetrics(obs::MetricsRegistry* registry) const {
  registry->GetExportedCounter("merge.in.inserts")->Set(stats_.inserts_in);
  registry->GetExportedCounter("merge.in.adjusts")->Set(stats_.adjusts_in);
  registry->GetExportedCounter("merge.in.stables")->Set(stats_.stables_in);
  registry->GetExportedCounter("merge.out.inserts")->Set(stats_.inserts_out);
  registry->GetExportedCounter("merge.out.adjusts")->Set(stats_.adjusts_out);
  registry->GetExportedCounter("merge.out.stables")->Set(stats_.stables_out);
  registry->GetExportedCounter("merge.dropped")->Set(stats_.dropped);
  registry->GetExportedCounter("merge.index_probes")->Set(index_probes_);
  registry->GetGauge("merge.state_bytes")->Set(StateBytes());
  registry->GetGauge("merge.streams")->Set(stream_count());
  registry->GetGauge("merge.streams_active")->Set(active_stream_count());
  // kMinTimestamp (no output stable yet) is exported verbatim; consumers
  // render it as "-inf" (see Timestamp docs).
  registry->GetGauge("merge.stable")->Set(max_stable_);

  for (int s = 0; s < stream_count(); ++s) {
    const PerInputStats& in = per_input_[static_cast<size_t>(s)];
    const std::string prefix = "merge.input." + std::to_string(s) + ".";
    registry->GetExportedCounter(prefix + "inserts_in")->Set(in.inserts_in);
    registry->GetExportedCounter(prefix + "adjusts_in")->Set(in.adjusts_in);
    registry->GetExportedCounter(prefix + "stables_in")->Set(in.stables_in);
    registry->GetExportedCounter(prefix + "elements_in")->Set(in.elements_in());
    registry->GetExportedCounter(prefix + "dropped")->Set(in.dropped);
    registry->GetExportedCounter(prefix + "contributed")->Set(in.contributed);
    registry->GetExportedCounter(prefix + "adjusts_contributed")
        ->Set(in.adjusts_contributed);
    registry->GetGauge(prefix + "stable_point")->Set(in.stable_point);
    registry->GetGauge(prefix + "active")
        ->Set(stream_active(s) ? 1 : 0);
  }
}

MergeOutputStats AggregateShardStats(std::span<MergeAlgorithm* const> shards,
                                     int64_t stables_out) {
  LM_CHECK(!shards.empty());
  MergeOutputStats total = shards[0]->stats();
  for (size_t k = 1; k < shards.size(); ++k) {
    const MergeOutputStats& s = shards[k]->stats();
    total.inserts_out += s.inserts_out;
    total.adjusts_out += s.adjusts_out;
    total.inserts_in += s.inserts_in;
    total.adjusts_in += s.adjusts_in;
    total.stables_in = std::min(total.stables_in, s.stables_in);
    total.dropped += s.dropped;
  }
  total.stables_out = stables_out;
  return total;
}

std::vector<PerInputStats> AggregateShardPerInputStats(
    std::span<MergeAlgorithm* const> shards) {
  LM_CHECK(!shards.empty());
  std::vector<PerInputStats> total = shards[0]->per_input_stats();
  for (size_t k = 1; k < shards.size(); ++k) {
    const std::vector<PerInputStats>& per_input =
        shards[k]->per_input_stats();
    LM_CHECK(per_input.size() == total.size());
    for (size_t i = 0; i < per_input.size(); ++i) {
      const PerInputStats& in = per_input[i];
      PerInputStats& out = total[i];
      out.inserts_in += in.inserts_in;
      out.adjusts_in += in.adjusts_in;
      out.stables_in = std::min(out.stables_in, in.stables_in);
      out.dropped += in.dropped;
      out.contributed += in.contributed;
      out.adjusts_contributed += in.adjusts_contributed;
      out.stable_point = std::min(out.stable_point, in.stable_point);
    }
  }
  return total;
}

void ExportAggregatedMergeMetrics(std::span<MergeAlgorithm* const> shards,
                                  int64_t stables_out, Timestamp output_stable,
                                  obs::MetricsRegistry* registry) {
  LM_CHECK(!shards.empty());
  const MergeOutputStats total = AggregateShardStats(shards, stables_out);
  registry->GetExportedCounter("merge.in.inserts")->Set(total.inserts_in);
  registry->GetExportedCounter("merge.in.adjusts")->Set(total.adjusts_in);
  registry->GetExportedCounter("merge.in.stables")->Set(total.stables_in);
  registry->GetExportedCounter("merge.out.inserts")->Set(total.inserts_out);
  registry->GetExportedCounter("merge.out.adjusts")->Set(total.adjusts_out);
  registry->GetExportedCounter("merge.out.stables")->Set(total.stables_out);
  registry->GetExportedCounter("merge.dropped")->Set(total.dropped);
  int64_t probes = 0;
  int64_t state_bytes = 0;
  for (const MergeAlgorithm* shard : shards) {
    probes += shard->index_probes();
    state_bytes += shard->StateBytes();
  }
  registry->GetExportedCounter("merge.index_probes")->Set(probes);
  registry->GetGauge("merge.state_bytes")->Set(state_bytes);
  registry->GetGauge("merge.streams")->Set(shards[0]->stream_count());
  registry->GetGauge("merge.streams_active")
      ->Set(shards[0]->active_stream_count());
  registry->GetGauge("merge.stable")->Set(output_stable);
  registry->GetGauge("merge.shards")
      ->Set(static_cast<int64_t>(shards.size()));

  const std::vector<PerInputStats> per_input =
      AggregateShardPerInputStats(shards);
  for (size_t s = 0; s < per_input.size(); ++s) {
    const PerInputStats& in = per_input[s];
    const std::string prefix = "merge.input." + std::to_string(s) + ".";
    registry->GetExportedCounter(prefix + "inserts_in")->Set(in.inserts_in);
    registry->GetExportedCounter(prefix + "adjusts_in")->Set(in.adjusts_in);
    registry->GetExportedCounter(prefix + "stables_in")->Set(in.stables_in);
    registry->GetExportedCounter(prefix + "elements_in")->Set(in.elements_in());
    registry->GetExportedCounter(prefix + "dropped")->Set(in.dropped);
    registry->GetExportedCounter(prefix + "contributed")->Set(in.contributed);
    registry->GetExportedCounter(prefix + "adjusts_contributed")
        ->Set(in.adjusts_contributed);
    registry->GetGauge(prefix + "stable_point")->Set(in.stable_point);
    registry->GetGauge(prefix + "active")
        ->Set(shards[0]->stream_active(static_cast<int>(s)) ? 1 : 0);
  }
}

}  // namespace lmerge
