// in3t — the three-tier index of Algorithm R4 (Sec. IV-E, Fig. 1 right).
//
// Like in2t, but the fully general case allows *many* events with the same
// (Vs, payload) — different Ve values and even exact duplicates — so the
// single Ve slot of the bottom tier is replaced by a small red-black tree
// mapping Ve -> multiplicity (with a cached total) per stream, plus the
// distinguished output entry.

#ifndef LMERGE_CORE_IN3T_H_
#define LMERGE_CORE_IN3T_H_

#include <cstdint>
#include <utility>

#include "common/payload_ledger.h"
#include "common/timestamp.h"
#include "container/hash_table.h"
#include "container/rbtree.h"
#include "core/in2t.h"  // for kOutputStream
#include "temporal/event.h"

namespace lmerge {

// Per-stream multiset of validity end times for one (Vs, payload) key.
class VeMultiset {
 public:
  VeMultiset() = default;
  VeMultiset(VeMultiset&&) = default;
  VeMultiset& operator=(VeMultiset&&) = default;

  void Increment(Timestamp ve, int64_t n = 1) {
    auto [it, inserted] = counts_.Insert(ve, n);
    if (!inserted) it.value() += n;
    total_ += n;
  }

  // Removes one occurrence of `ve`; returns false (without changes) if none
  // is present — the caller treats that as an input inconsistency.
  bool Decrement(Timestamp ve) {
    auto it = counts_.Find(ve);
    if (it == counts_.end()) return false;
    if (--it.value() == 0) counts_.Erase(it);
    --total_;
    return true;
  }

  int64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }
  int64_t CountOf(Timestamp ve) const {
    auto it = counts_.Find(ve);
    return it == counts_.end() ? 0 : it.value();
  }

  // Multiset equality; O(min distinct Ve count) with an O(1) total check
  // first.  Used by the R4 frontier to detect uniform nodes.
  bool Equals(const VeMultiset& other) const {
    if (total_ != other.total_) return false;
    auto a = counts_.begin();
    auto b = other.counts_.begin();
    while (a != counts_.end() && b != other.counts_.end()) {
      if (a.key() != b.key() || a.value() != b.value()) return false;
      ++a;
      ++b;
    }
    return a == counts_.end() && b == other.counts_.end();
  }

  // Largest Ve present, or `fallback` when empty.
  Timestamp MaxVe(Timestamp fallback) const {
    auto it = counts_.Last();
    return it == counts_.end() ? fallback : it.key();
  }

  // Invokes fn(ve, count) in ascending Ve order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {
      fn(it.key(), it.value());
    }
  }

  int64_t StateBytes() const {
    return static_cast<int64_t>(sizeof(*this)) + counts_.NodeBytes();
  }

 private:
  RbTree<Timestamp, int64_t> counts_;
  int64_t total_ = 0;
};

class In3t {
 public:
  using EndsTable = HashTable<int32_t, VeMultiset, IntHash>;
  // Cached per-node bytes: the payload's duplicated (per-node) size, fixed
  // at AddNode, and the auxiliary bottom tiers (slot bytes + per-stream
  // multisets), re-synced after mutations so StateBytes() is O(1).  Shared
  // payload bytes are charged through the identity ledger — once per
  // distinct rep, not once per node.
  struct NodeBytesCache {
    int64_t payload = 0;  // unshared (pre-interning) charge for this node
    int64_t aux = 0;
  };
  using Tree =
      RbTree<VsPayload, EndsTable, VsPayloadLess, MinAugment<NodeBytesCache>>;
  using Iterator = Tree::Iterator;

  Iterator SameVsPayload(Timestamp vs, const Row& payload) const {
    return tree_.Find(VsPayloadRef(vs, payload));
  }

  Iterator AddNode(Timestamp vs, const Row& payload) {
    auto [it, inserted] = tree_.Insert(VsPayload(vs, payload), EndsTable());
    LM_DCHECK(inserted);
    NodeBytesCache& cache = tree_.AugExtra(it);
    cache.payload = payload.DeepSizeBytes();
    cache.aux = AuxBytes(it);
    unshared_payload_bytes_ += cache.payload;
    ledger_.AddRef(it.key().payload);
    aux_bytes_ += cache.aux;
    return it;
  }

  Iterator DeleteNode(Iterator it) {
    const NodeBytesCache& cache = tree_.AugExtra(it);
    unshared_payload_bytes_ -= cache.payload;
    ledger_.Release(it.key().payload);
    aux_bytes_ -= cache.aux;
    return tree_.Erase(it);
  }

  // Re-syncs the cached auxiliary bytes after the node's bottom tiers
  // changed; O(streams + distinct Ve).
  void SyncAuxBytes(Iterator it) {
    NodeBytesCache& cache = tree_.AugExtra(it);
    const int64_t aux = AuxBytes(it);
    aux_bytes_ += aux - cache.aux;
    cache.aux = aux;
  }

  // Frontier bookkeeping for the pruned stable scan; see In2t for the
  // contract (stale-LOW allowed, stale-HIGH forbidden).
  void SetFrontier(Iterator it, Timestamp frontier) {
    tree_.SetAugValue(it, frontier);
  }
  Timestamp Frontier(Iterator it) const { return tree_.AugValue(it); }
  Iterator FirstActionable(Timestamp t) const { return tree_.FirstAugBelow(t); }
  Iterator FirstActionableFrom(Iterator it, Timestamp t) const {
    return tree_.FirstAugBelowFrom(it, t);
  }
  Iterator NextActionable(Iterator it, Timestamp t) const {
    return tree_.NextAugBelow(it, t);
  }
  template <typename Fn>
  void RecomputeFrontiers(Fn&& fn) {
    tree_.RecomputeAug(std::forward<Fn>(fn));
  }

  Iterator begin() const { return tree_.begin(); }
  Iterator end() const { return tree_.end(); }

  int64_t node_count() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  // O(1): all three tiers' bytes are maintained incrementally; interned
  // payload reps are charged once per distinct rep via the ledger.
  int64_t StateBytes() const {
    return tree_.NodeBytes() + ledger_.bytes() + ledger_.OverheadBytes() +
           aux_bytes_;
  }

  // The pre-interning model: every node owns a private payload copy.
  int64_t StateBytesUnshared() const {
    return tree_.NodeBytes() + unshared_payload_bytes_ + aux_bytes_;
  }

  int64_t distinct_payloads() const { return ledger_.distinct(); }

 private:
  static int64_t AuxBytes(Iterator it) {
    int64_t bytes = it.value().SlotBytes();
    it.value().ForEach([&bytes](int32_t stream, const VeMultiset& ends) {
      (void)stream;
      bytes += ends.StateBytes();
    });
    return bytes;
  }

  Tree tree_;
  SharedPayloadLedger ledger_;
  int64_t unshared_payload_bytes_ = 0;
  int64_t aux_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_IN3T_H_
