// in3t — the three-tier index of Algorithm R4 (Sec. IV-E, Fig. 1 right).
//
// Like in2t, but the fully general case allows *many* events with the same
// (Vs, payload) — different Ve values and even exact duplicates — so the
// single Ve slot of the bottom tier is replaced by a small red-black tree
// mapping Ve -> multiplicity (with a cached total) per stream, plus the
// distinguished output entry.

#ifndef LMERGE_CORE_IN3T_H_
#define LMERGE_CORE_IN3T_H_

#include <cstdint>

#include "common/timestamp.h"
#include "container/hash_table.h"
#include "container/rbtree.h"
#include "core/in2t.h"  // for kOutputStream
#include "temporal/event.h"

namespace lmerge {

// Per-stream multiset of validity end times for one (Vs, payload) key.
class VeMultiset {
 public:
  VeMultiset() = default;
  VeMultiset(VeMultiset&&) = default;
  VeMultiset& operator=(VeMultiset&&) = default;

  void Increment(Timestamp ve, int64_t n = 1) {
    auto [it, inserted] = counts_.Insert(ve, n);
    if (!inserted) it.value() += n;
    total_ += n;
  }

  // Removes one occurrence of `ve`; returns false (without changes) if none
  // is present — the caller treats that as an input inconsistency.
  bool Decrement(Timestamp ve) {
    auto it = counts_.Find(ve);
    if (it == counts_.end()) return false;
    if (--it.value() == 0) counts_.Erase(it);
    --total_;
    return true;
  }

  int64_t total() const { return total_; }
  int64_t CountOf(Timestamp ve) const {
    auto it = counts_.Find(ve);
    return it == counts_.end() ? 0 : it.value();
  }

  // Largest Ve present, or `fallback` when empty.
  Timestamp MaxVe(Timestamp fallback) const {
    auto it = counts_.Last();
    return it == counts_.end() ? fallback : it.key();
  }

  // Invokes fn(ve, count) in ascending Ve order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {
      fn(it.key(), it.value());
    }
  }

  int64_t StateBytes() const {
    return static_cast<int64_t>(sizeof(*this)) + counts_.NodeBytes();
  }

 private:
  RbTree<Timestamp, int64_t> counts_;
  int64_t total_ = 0;
};

class In3t {
 public:
  using EndsTable = HashTable<int32_t, VeMultiset, IntHash>;
  using Tree = RbTree<VsPayload, EndsTable, VsPayloadLess>;
  using Iterator = Tree::Iterator;

  Iterator SameVsPayload(Timestamp vs, const Row& payload) const {
    return tree_.Find(VsPayloadRef(vs, payload));
  }

  Iterator AddNode(Timestamp vs, const Row& payload) {
    payload_bytes_ += payload.DeepSizeBytes();
    auto [it, inserted] = tree_.Insert(VsPayload(vs, payload), EndsTable());
    LM_DCHECK(inserted);
    return it;
  }

  Iterator DeleteNode(Iterator it) {
    payload_bytes_ -= it.key().payload.DeepSizeBytes();
    return tree_.Erase(it);
  }

  Iterator begin() const { return tree_.begin(); }
  Iterator end() const { return tree_.end(); }

  int64_t node_count() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  int64_t StateBytes() const {
    int64_t bytes = tree_.NodeBytes() + payload_bytes_;
    for (auto it = tree_.begin(); it != tree_.end(); ++it) {
      bytes += it.value().SlotBytes();
      it.value().ForEach([&bytes](int32_t stream, const VeMultiset& ends) {
        (void)stream;
        bytes += ends.StateBytes();
      });
    }
    return bytes;
  }

 private:
  Tree tree_;
  int64_t payload_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_IN3T_H_
