// Algorithm R4 (Sec. IV-E) — the fully general LMerge.
//
// No restrictions: elements of all kinds in any stable()-consistent order,
// and the TDB is a multiset (several events may share (Vs, payload), with
// different or even equal lifetimes).  State is the in3t index.
//
// Invariants maintained when processing a stable(t) element from stream s
// (the paper's AdjustOutputCount / AdjustOutput, realized here as one
// region-reconciliation pass per node with Vs < t):
//   * once a (Vs, payload) key is half frozen, the output holds exactly as
//     many events for it as the driving input;
//   * every end time the stable point fully freezes has equal multiplicity
//     in the output and the driving input.
// Both are achieved by transforming the output's multiset of adjustable end
// times (Ve >= previous MaxStable) into the driving input's, via adjust()
// elements, plus insert()/retraction only while the key is still unfrozen.

#ifndef LMERGE_CORE_LMERGE_R4_H_
#define LMERGE_CORE_LMERGE_R4_H_

#include "common/checkpoint.h"
#include "core/in3t.h"
#include "core/merge_algorithm.h"
#include "core/merge_policy.h"

namespace lmerge {

class LMergeR4 : public MergeAlgorithm, public Checkpointable {
 public:
  LMergeR4(int num_streams, ElementSink* sink,
           MergePolicy policy = MergePolicy::Default())
      : MergeAlgorithm(num_streams, sink), policy_(policy) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR4; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  // Batched delivery: groups consecutive same-(Vs, payload) elements into
  // runs with one index probe and one frontier refresh each; output is
  // byte-identical to element-wise delivery.
  Status ProcessBatch(int stream,
                      std::span<const StreamElement> batch) override;
  Status ValidateElement(const StreamElement& element) const override;

  int AddStream() override;
  Status AdoptOutputView(int stream) override;

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this)) + index_.StateBytes();
  }

  int64_t StateBytesUnshared() const override {
    return static_cast<int64_t>(sizeof(*this)) + index_.StateBytesUnshared();
  }

  int64_t index_node_count() const { return index_.node_count(); }
  int64_t distinct_payloads() const { return index_.distinct_payloads(); }
  // Number of repairs skipped because inputs were mutually inconsistent
  // (zero for well-formed inputs; exposed for diagnostics and tests).
  int64_t inconsistency_count() const { return inconsistencies_; }

  // Checkpointable: snapshots MaxStable plus the whole in3t index (per
  // stream, the Ve multiset of every live key).
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;
  Checkpointable* checkpointable() override { return this; }

 private:
  // Rewrites the output multiset for the node at `it` (end times in the
  // adjustable region [max_stable_, +inf]) to agree with stream `stream`'s
  // multiset ahead of propagating stable(t) — exactly, or (with
  // policy.r4_exact_match == false) only as far as compatibility demands.
  void ReconcileNode(In3t::Iterator it, int stream, Timestamp t);

  // Conservative per-node frontier for the pruned stable scan: if every
  // active stream's Ve multiset equals the output's (absent == empty) the
  // node is uniform and untouchable until the common MaxVe freezes;
  // otherwise it must be visited as soon as it is half frozen (Vs).
  Timestamp NodeFrontier(const VsPayload& key, In3t::EndsTable& ends) const;
  void RefreshNode(In3t::Iterator node);
  Status ApplyInsert(int stream, const StreamElement& element,
                     In3t::Iterator* node_io);
  Status ApplyAdjust(int stream, const StreamElement& element,
                     In3t::Iterator* node_io);

  MergePolicy policy_;
  In3t index_;
  int64_t inconsistencies_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R4_H_
