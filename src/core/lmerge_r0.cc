#include "core/lmerge_r0.h"

namespace lmerge {

Status LMergeR0::OnInsert(int stream, const StreamElement& element) {
  (void)stream;
  if (element.vs() > max_vs_) {
    max_vs_ = element.vs();
    EmitInsert(element.payload(), element.vs(), element.ve());
  } else {
    CountDrop();
  }
  return Status::Ok();
}

Status LMergeR0::OnAdjust(int stream, const StreamElement& element) {
  (void)stream;
  return Status::FailedPrecondition(
      "LMergeR0 does not support adjust elements: " + element.ToString());
}

void LMergeR0::OnStable(int stream, Timestamp t) {
  (void)stream;
  if (t > max_stable_) {
    max_stable_ = t;
    EmitStable(t);
  }
}

Status LMergeR0::ProcessBatch(int stream,
                              std::span<const StreamElement> batch) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  LM_DCHECK(stream_active(stream));
  // One pass merging the (sorted) run against the watermarks; identical
  // output to per-element delivery, minus the dispatch overhead.
  for (const StreamElement& element : batch) {
    CountIn(stream, element);
    switch (element.kind()) {
      case ElementKind::kInsert:
        if (element.vs() > max_vs_) {
          max_vs_ = element.vs();
          EmitInsert(element.payload(), element.vs(), element.ve());
        } else {
          CountDrop();
        }
        break;
      case ElementKind::kAdjust:
        return Status::FailedPrecondition(
            "LMergeR0 does not support adjust elements: " +
            element.ToString());
      case ElementKind::kStable:
        OnStable(stream, element.stable_time());
        break;
    }
  }
  return Status::Ok();
}

Status LMergeR0::ValidateElement(const StreamElement& element) const {
  if (element.is_adjust()) {
    return Status::FailedPrecondition(
        "LMergeR0 does not support adjust elements: " + element.ToString());
  }
  return Status::Ok();
}

void LMergeR0::SaveState(Encoder* encoder) const {
  encoder->WriteU32(static_cast<uint32_t>(stream_count()));
  encoder->WriteI64(max_stable_);
  encoder->WriteI64(max_vs_);
}

Status LMergeR0::RestoreState(Decoder* decoder) {
  uint32_t streams = 0;
  Status status = decoder->ReadU32(&streams);
  if (!status.ok()) return status;
  while (stream_count() < static_cast<int>(streams)) {
    MergeAlgorithm::AddStream();
  }
  if (!(status = decoder->ReadI64(&max_stable_)).ok()) return status;
  return decoder->ReadI64(&max_vs_);
}

}  // namespace lmerge
