#include "core/lmerge_r0.h"

namespace lmerge {

Status LMergeR0::OnInsert(int stream, const StreamElement& element) {
  (void)stream;
  if (element.vs() > max_vs_) {
    max_vs_ = element.vs();
    EmitInsert(element.payload(), element.vs(), element.ve());
  } else {
    CountDrop();
  }
  return Status::Ok();
}

Status LMergeR0::OnAdjust(int stream, const StreamElement& element) {
  (void)stream;
  return Status::FailedPrecondition(
      "LMergeR0 does not support adjust elements: " + element.ToString());
}

void LMergeR0::OnStable(int stream, Timestamp t) {
  (void)stream;
  if (t > max_stable_) {
    max_stable_ = t;
    EmitStable(t);
  }
}

}  // namespace lmerge
