// Output policies for LMerge (Sec. V-A).
//
// Compatibility leaves freedom in *when* the output reflects the inputs.
// The paper identifies two policy locations in Algorithm R3:
//
//  Location 1 — what to do with incoming adjust() elements:
//    * lazy (default): never forward adjusts; reconcile only when a stable()
//      element forces it.  Theorem 1 (non-chattiness) holds: LMerge emits no
//      more insert/adjust elements than the inserts it receives.
//    * eager: reflect adjusts at the output immediately (chattier, lower
//      latency for downstream listeners that care about revisions).
//
//  Location 2 — when to first emit an event:
//    * first insert wins (default): maximally responsive.
//    * leading stream only: emit inserts only from the input with the
//      current maximum stable point.
//    * wait until half frozen: never emit an event that might later need to
//      be fully retracted.
//    * fraction threshold: emit once >= fraction of the attached inputs have
//      produced the event (hybrid of Sec. V-A).

#ifndef LMERGE_CORE_MERGE_POLICY_H_
#define LMERGE_CORE_MERGE_POLICY_H_

#include <cstdint>

namespace lmerge {

enum class AdjustPolicy {
  kLazy,
  kEager,
};

enum class InsertPolicy {
  kFirstInsertWins,
  kLeadingStreamOnly,
  kWaitHalfFrozen,
  kFractionThreshold,
};

struct MergePolicy {
  AdjustPolicy adjust_policy = AdjustPolicy::kLazy;
  InsertPolicy insert_policy = InsertPolicy::kFirstInsertWins;
  // Used only with kFractionThreshold: emit once this fraction of attached
  // inputs (rounded up, at least one) have produced the event.
  double insert_fraction = 0.5;
  // Output stable-point lag (Sec. III-D: "there might be cases where
  // lagging a bit behind the maximum would avoid some adjust() elements in
  // the output").  The output stable point trails the maximum input stable
  // point by this many ticks, giving revisions that arrive shortly after a
  // stable a chance to be absorbed instead of reconciled twice.
  // 0 = track the maximum exactly (the paper's recommended default).
  int64_t stable_lag = 0;
  // R4 only: when a stable() element forces reconciliation, rewrite the
  // output's adjustable end-time multiset to match the driving input
  // exactly (true), or only as far as compatibility requires — end times
  // the stable point is about to freeze (false).  Exact matching is useful
  // "if we expect half frozen elements to rarely get updated in the
  // future" (Sec. IV-E); count-only matching is less chatty.
  bool r4_exact_match = true;

  static MergePolicy Default() { return MergePolicy(); }
  static MergePolicy Eager() {
    MergePolicy p;
    p.adjust_policy = AdjustPolicy::kEager;
    return p;
  }
  static MergePolicy Conservative() {
    MergePolicy p;
    p.insert_policy = InsertPolicy::kWaitHalfFrozen;
    return p;
  }
};

}  // namespace lmerge

#endif  // LMERGE_CORE_MERGE_POLICY_H_
