#include "core/lmerge_r3_minus.h"

namespace lmerge {

void LMergeR3Minus::Put(Index& index, Timestamp vs, const Row& payload,
                        Timestamp ve) {
  // The baseline's defining cost is one private payload copy per index it
  // appears in, so interning is deliberately bypassed: DeepCopy() gives a
  // rep shared with no other handle, keeping the paper's memory comparison
  // honest now that plain Row copies share storage.
  auto [it, inserted] = index.tree.Insert(VsPayload(vs, payload.DeepCopy()), ve);
  if (inserted) {
    index.payload_bytes += it.key().payload.DeepSizeBytes();
  } else {
    it.value() = ve;
  }
}

Status LMergeR3Minus::OnInsert(int stream, const StreamElement& element) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("insert with Ve < Vs: " +
                                   element.ToString());
  }
  if (element.vs() < max_stable_ &&
      output_.tree.Find(VsPayloadRef(element.vs(), element.payload())) ==
          output_.tree.end()) {
    CountDrop();
    return Status::Ok();
  }
  Put(*inputs_[static_cast<size_t>(stream)], element.vs(), element.payload(),
      element.ve());
  if (element.vs() >= max_stable_ &&
      output_.tree.Find(VsPayloadRef(element.vs(), element.payload())) ==
          output_.tree.end()) {
    EmitInsert(element.payload(), element.vs(), element.ve());
    Put(output_, element.vs(), element.payload(), element.ve());
  }
  return Status::Ok();
}

Status LMergeR3Minus::OnAdjust(int stream, const StreamElement& element) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("adjust with Ve < Vs: " +
                                   element.ToString());
  }
  Index& index = *inputs_[static_cast<size_t>(stream)];
  auto it = index.tree.Find(VsPayloadRef(element.vs(), element.payload()));
  if (it == index.tree.end()) {
    CountDrop();
    return Status::Ok();
  }
  it.value() = element.ve();
  return Status::Ok();
}

void LMergeR3Minus::OnStable(int stream, Timestamp t) {
  if (t <= max_stable_) return;
  Index& driver = *inputs_[static_cast<size_t>(stream)];

  // Pass 1: reconcile (and prune) every output event whose Vs precedes t.
  auto out_it = output_.tree.begin();
  while (out_it != output_.tree.end() && out_it.key().vs < t) {
    const Timestamp vs = out_it.key().vs;
    const Row& payload = out_it.key().payload;
    auto in_it = driver.tree.Find(VsPayloadRef(vs, payload));
    const Timestamp in_ve = in_it == driver.tree.end() ? vs : in_it.value();
    const Timestamp out_ve = out_it.value();
    if (in_ve != out_ve && (in_ve < t || out_ve < t)) {
      EmitAdjust(payload, vs, out_ve, in_ve);
      out_it.value() = in_ve;
    }
    if (in_ve < t) {
      // Fully frozen: remove from the output index and from every per-input
      // index (one extra tree lookup per input — part of this baseline's
      // runtime cost).
      for (auto& input : inputs_) {
        auto it = input->tree.Find(VsPayloadRef(vs, payload));
        if (it != input->tree.end()) {
          input->payload_bytes -= it.key().payload.DeepSizeBytes();
          input->tree.Erase(it);
        }
      }
      output_.payload_bytes -= out_it.key().payload.DeepSizeBytes();
      out_it = output_.tree.Erase(out_it);
    } else {
      ++out_it;
    }
  }

  // Pass 2: events the driver has with Vs < t that were never output (their
  // insert arrived behind the stable point) must be emitted before t freezes
  // them out (same missing-element policy as LMR3+).
  auto in_it = driver.tree.begin();
  while (in_it != driver.tree.end() && in_it.key().vs < t) {
    const Timestamp vs = in_it.key().vs;
    const Row& payload = in_it.key().payload;
    const Timestamp in_ve = in_it.value();
    if (output_.tree.Find(VsPayloadRef(vs, payload)) == output_.tree.end() &&
        vs >= max_stable_) {
      EmitInsert(payload, vs, in_ve);
      if (in_ve >= t) {
        Put(output_, vs, payload, in_ve);
        ++in_it;
        continue;
      }
      // Emitted and immediately frozen: purge from all inputs.
      for (size_t s = 0; s < inputs_.size(); ++s) {
        if (inputs_[s].get() == &driver) continue;
        auto it = inputs_[s]->tree.Find(VsPayloadRef(vs, payload));
        if (it != inputs_[s]->tree.end()) {
          inputs_[s]->payload_bytes -= it.key().payload.DeepSizeBytes();
          inputs_[s]->tree.Erase(it);
        }
      }
      driver.payload_bytes -= in_it.key().payload.DeepSizeBytes();
      in_it = driver.tree.Erase(in_it);
      continue;
    }
    if (in_ve < t) {
      // Frozen events already reconciled in pass 1 were erased there; any
      // remaining frozen driver event without output coverage is dropped.
      driver.payload_bytes -= in_it.key().payload.DeepSizeBytes();
      in_it = driver.tree.Erase(in_it);
    } else {
      ++in_it;
    }
  }

  max_stable_ = t;
  EmitStable(t);
}

int64_t LMergeR3Minus::StateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(*this));
  for (const auto& input : inputs_) {
    bytes += input->tree.NodeBytes() + input->payload_bytes +
             static_cast<int64_t>(sizeof(Index));
  }
  bytes += output_.tree.NodeBytes() + output_.payload_bytes;
  return bytes;
}

}  // namespace lmerge
