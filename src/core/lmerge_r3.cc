#include "core/lmerge_r3.h"

#include <algorithm>

namespace lmerge {

bool LMergeR3::PolicyAllowsEmit(int stream, const In2t::EndTable& ends) const {
  switch (policy_.insert_policy) {
    case InsertPolicy::kFirstInsertWins:
      return true;
    case InsertPolicy::kLeadingStreamOnly: {
      Timestamp lead = kMinTimestamp;
      for (int s = 0; s < stream_count(); ++s) {
        if (stream_active(s)) {
          lead = std::max(lead, last_stable_[static_cast<size_t>(s)]);
        }
      }
      return last_stable_[static_cast<size_t>(stream)] == lead;
    }
    case InsertPolicy::kWaitHalfFrozen:
      return false;  // emitted during stable() processing instead
    case InsertPolicy::kFractionThreshold: {
      const int needed = std::max(
          1, static_cast<int>(policy_.insert_fraction *
                                  static_cast<double>(active_stream_count()) +
                              0.999999));
      // `ends` holds one entry per input stream that has produced the event
      // (the output entry is absent until first emission).
      return ends.size() >= needed;
    }
  }
  return true;
}

Timestamp LMergeR3::NodeFrontier(const VsPayload& key,
                                 In2t::EndTable& ends) const {
  const Timestamp vs = key.vs;
  const Timestamp* out_ptr = ends.Find(kOutputStream);
  Timestamp frontier = out_ptr != nullptr ? *out_ptr : vs;
  int present = 0;
  ends.ForEach([&](int32_t s, Timestamp ve) {
    if (s == kOutputStream) return;
    if (s >= stream_count() || !stream_active(s)) return;
    ++present;
    frontier = std::min(frontier, ve);
  });
  // An active stream with no entry views the event as the empty lifetime
  // (Ve == Vs), so the frontier collapses to Vs.
  if (present < active_stream_count()) frontier = vs;
  return frontier;
}

void LMergeR3::RefreshNode(In2t::Iterator node) {
  index_.SyncTableBytes(node);
  index_.SetFrontier(node, NodeFrontier(node.key(), node.value()));
}

Status LMergeR3::ApplyInsert(int stream, const StreamElement& element,
                             In2t::Iterator* node_io) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("insert with Ve < Vs: " +
                                   element.ToString());
  }
  In2t::Iterator node = *node_io;
  if (node == index_.end()) {
    if (element.vs() < max_stable_) {
      // The key previously existed and was fully frozen and removed, or the
      // stream is lagging; either way the element is already accounted for.
      CountDrop();
      return Status::Ok();
    }
    node = index_.AddNode(element.vs(), element.payload());
    *node_io = node;
  }
  In2t::EndTable& ends = node.value();
  *ends.Insert(stream, element.ve()).first = element.ve();
  if (ends.Find(kOutputStream) == nullptr && element.vs() >= max_stable_ &&
      PolicyAllowsEmit(stream, ends)) {
    EmitInsert(element.payload(), element.vs(), element.ve());
    ends.Insert(kOutputStream, element.ve());
  }
  return Status::Ok();
}

Status LMergeR3::ApplyAdjust(int stream, const StreamElement& element,
                             In2t::Iterator* node_io) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("adjust with Ve < Vs: " +
                                   element.ToString());
  }
  if (*node_io == index_.end()) {
    CountDrop();
    return Status::Ok();
  }
  In2t::EndTable& ends = node_io->value();
  *ends.Insert(stream, element.ve()).first = element.ve();

  if (policy_.adjust_policy == AdjustPolicy::kEager) {
    // Reflect the revision at the output immediately when doing so keeps the
    // output stream well formed (both old and new end must still be
    // adjustable relative to the output stable point).
    Timestamp* out_ve = ends.Find(kOutputStream);
    if (out_ve != nullptr && *out_ve != element.ve() &&
        *out_ve >= max_stable_ && element.ve() >= max_stable_ &&
        *out_ve != element.vs() &&
        (element.ve() != element.vs() || element.vs() >= max_stable_)) {
      EmitAdjust(element.payload(), element.vs(), *out_ve, element.ve());
      *out_ve = element.ve();
    }
  }
  return Status::Ok();
}

Status LMergeR3::OnInsert(int stream, const StreamElement& element) {
  CountIndexProbe();
  In2t::Iterator node = index_.SameVsPayload(element.vs(), element.payload());
  const Status status = ApplyInsert(stream, element, &node);
  if (node != index_.end()) RefreshNode(node);
  return status;
}

Status LMergeR3::OnAdjust(int stream, const StreamElement& element) {
  CountIndexProbe();
  In2t::Iterator node = index_.SameVsPayload(element.vs(), element.payload());
  const Status status = ApplyAdjust(stream, element, &node);
  if (node != index_.end()) RefreshNode(node);
  return status;
}

Status LMergeR3::ProcessBatch(int stream,
                              std::span<const StreamElement> batch) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  LM_DCHECK(stream_active(stream));
  size_t i = 0;
  while (i < batch.size()) {
    const StreamElement& head = batch[i];
    if (head.is_stable()) {
      CountIn(stream, head);
      OnStable(stream, head.stable_time());
      ++i;
      continue;
    }
    // A run of insert/adjust elements sharing (Vs, payload): one index
    // probe and one frontier/byte refresh serve the whole run.
    CountIndexProbe();
    In2t::Iterator node = index_.SameVsPayload(head.vs(), head.payload());
    Status status = Status::Ok();
    size_t j = i;
    for (; j < batch.size(); ++j) {
      const StreamElement& e = batch[j];
      if (e.is_stable() || e.vs() != head.vs() ||
          !(e.payload() == head.payload())) {
        break;
      }
      CountIn(stream, e);
      const bool superseded =
          e.is_adjust() && policy_.adjust_policy == AdjustPolicy::kLazy &&
          node != index_.end() && j + 1 < batch.size() &&
          batch[j + 1].is_adjust() && batch[j + 1].vs() == head.vs() &&
          batch[j + 1].ve() >= batch[j + 1].vs() &&
          batch[j + 1].payload() == head.payload();
      if (superseded) {
        // Under lazy reconciliation this adjust's Ve slot is overwritten by
        // the next (valid) adjust of the run before any stable can read it;
        // only its validation is observable.
        status = e.ve() < e.vs()
                     ? Status::InvalidArgument("adjust with Ve < Vs: " +
                                               e.ToString())
                     : Status::Ok();
      } else {
        status = e.is_insert() ? ApplyInsert(stream, e, &node)
                               : ApplyAdjust(stream, e, &node);
      }
      if (!status.ok()) break;
    }
    if (node != index_.end()) RefreshNode(node);
    if (!status.ok()) return status;
    i = j;
  }
  return Status::Ok();
}

Status LMergeR3::ValidateElement(const StreamElement& element) const {
  if (element.is_stable()) return Status::Ok();
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument(
        (element.is_insert() ? std::string("insert with Ve < Vs: ")
                             : std::string("adjust with Ve < Vs: ")) +
        element.ToString());
  }
  return Status::Ok();
}

Status LMergeR3::AdoptOutputView(int stream) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  // The adopting stream continues the snapshot's output: every node the
  // output has emitted is viewed by the new stream at the output's Ve.
  // Nodes without an output entry stay absent for the stream too — the
  // output never presented them.
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    In2t::EndTable& ends = it.value();
    const Timestamp* out_ptr = ends.Find(kOutputStream);
    if (out_ptr != nullptr) {
      const Timestamp out_ve = *out_ptr;
      *ends.Insert(stream, out_ve).first = out_ve;
    }
    RefreshNode(it);
  }
  return Status::Ok();
}

int LMergeR3::AddStream() {
  last_stable_.push_back(kMinTimestamp);
  const int id = MergeAlgorithm::AddStream();
  // The joiner has no entries anywhere, so every node's frontier collapses
  // to its Vs until the new stream covers it.
  index_.RecomputeFrontiers(
      [this](const VsPayload& key, In2t::EndTable& ends) {
        return NodeFrontier(key, ends);
      });
  return id;
}

void LMergeR3::OnStable(int stream, Timestamp t) {
  last_stable_[static_cast<size_t>(stream)] =
      std::max(last_stable_[static_cast<size_t>(stream)], t);
  // Optionally trail the maximum input stable point (Sec. III-D) so that
  // revisions arriving shortly after a stable are absorbed, not re-emitted.
  if (policy_.stable_lag > 0 && t != kInfinity) {
    t = t > kMinTimestamp + policy_.stable_lag ? t - policy_.stable_lag
                                               : kMinTimestamp;
  }
  if (t <= max_stable_) return;

  // Frontier-pruned half-frozen scan: of the nodes with key.vs < t, visit
  // (in key order) only those whose frontier precedes t.  A skipped node
  // has min(out Ve, every active stream's Ve) >= t, so the repair condition
  // below is false for it and it is not fully frozen — the pruned walk
  // produces byte-identical output to scanning the whole Vs < t range.
  In2t::Iterator it = index_.FirstActionable(t);
  while (it != index_.end()) {
    const Timestamp vs = it.key().vs;
    LM_DCHECK(vs < t);
    In2t::EndTable& ends = it.value();

    // The driving stream's view of the event; absent means the event is not
    // in stream `stream`'s TDB (missing element, Sec. V-C) — encoded as
    // Ve == Vs, i.e., an empty lifetime.
    const Timestamp* in_ptr = ends.Find(stream);
    const Timestamp in_ve = in_ptr != nullptr ? *in_ptr : vs;
    // The output's view; absent (never emitted) is likewise encoded Ve == Vs.
    Timestamp* out_ptr = ends.Find(kOutputStream);
    const Timestamp out_ve = out_ptr != nullptr ? *out_ptr : vs;

    if (in_ve != out_ve && (in_ve < t || out_ve < t)) {
      // A divergence is about to be frozen; repair the output to match the
      // driving input.
      if (out_ve == vs) {
        // Not currently in the output TDB: (re)emit it.  vs >= max_stable_
        // holds because reconciliation at the previous stable point pinned
        // older nodes to the then-driver.
        LM_DCHECK(vs >= max_stable_);
        EmitInsert(it.key().payload, vs, in_ve);
      } else if (in_ve == vs) {
        // In the output TDB but absent from the driving input: retract.
        LM_DCHECK(out_ve >= max_stable_);
        EmitAdjust(it.key().payload, vs, out_ve, vs);
      } else {
        LM_DCHECK(out_ve >= max_stable_);
        EmitAdjust(it.key().payload, vs, out_ve, in_ve);
      }
      if (out_ptr != nullptr) {
        *out_ptr = in_ve;
      } else {
        ends.Insert(kOutputStream, in_ve);
      }
    }

    if (in_ve < t) {
      // Fully frozen under the new stable point: the output now matches the
      // reference stream for this key forever; drop the node.
      it = index_.FirstActionableFrom(index_.DeleteNode(it), t);
    } else {
      // Repairing raised the node's views; re-sync its frontier (this also
      // self-heals frontiers left stale-low by RemoveStream).
      RefreshNode(it);
      it = index_.NextActionable(it, t);
    }
  }

  max_stable_ = t;
  EmitStable(t);
}

void LMergeR3::SaveState(Encoder* encoder) const {
  encoder->WriteI64(max_stable_);
  encoder->WriteU32(static_cast<uint32_t>(last_stable_.size()));
  for (const Timestamp t : last_stable_) encoder->WriteI64(t);
  encoder->WriteU32(static_cast<uint32_t>(index_.node_count()));
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    encoder->WriteI64(it.key().vs);
    encoder->WriteRowRef(it.key().payload);
    encoder->WriteU32(static_cast<uint32_t>(it.value().size()));
    it.value().ForEach([encoder](int32_t stream, Timestamp ve) {
      encoder->WriteU32(static_cast<uint32_t>(stream));
      encoder->WriteI64(ve);
    });
  }
}

Status LMergeR3::RestoreState(Decoder* decoder) {
  Status status = decoder->ReadI64(&max_stable_);
  if (!status.ok()) return status;
  uint32_t stream_count_saved = 0;
  if (!(status = decoder->ReadU32(&stream_count_saved)).ok()) return status;
  last_stable_.assign(stream_count_saved, kMinTimestamp);
  for (uint32_t s = 0; s < stream_count_saved; ++s) {
    if (!(status = decoder->ReadI64(&last_stable_[s])).ok()) return status;
  }
  // Grow the stream registry to match the snapshot.
  while (stream_count() < static_cast<int>(stream_count_saved)) {
    MergeAlgorithm::AddStream();
  }
  index_ = In2t();
  uint32_t node_count = 0;
  if (!(status = decoder->ReadU32(&node_count)).ok()) return status;
  for (uint32_t n = 0; n < node_count; ++n) {
    int64_t vs = 0;
    Row payload;
    if (!(status = decoder->ReadI64(&vs)).ok()) return status;
    if (!(status = decoder->ReadRowRef(&payload)).ok()) return status;
    In2t::Iterator node = index_.AddNode(vs, payload);
    uint32_t entries = 0;
    if (!(status = decoder->ReadU32(&entries)).ok()) return status;
    for (uint32_t e = 0; e < entries; ++e) {
      uint32_t stream = 0;
      int64_t ve = 0;
      if (!(status = decoder->ReadU32(&stream)).ok()) return status;
      if (!(status = decoder->ReadI64(&ve)).ok()) return status;
      node.value().Insert(static_cast<int32_t>(stream), ve);
    }
  }
  // Rebuild the incremental byte counters and scan frontiers.
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    index_.SyncTableBytes(it);
  }
  index_.RecomputeFrontiers(
      [this](const VsPayload& key, In2t::EndTable& ends) {
        return NodeFrontier(key, ends);
      });
  return Status::Ok();
}

}  // namespace lmerge
