#include "core/lmerge_r4.h"

#include <vector>

namespace lmerge {

Timestamp LMergeR4::NodeFrontier(const VsPayload& key,
                                 In3t::EndsTable& ends) const {
  const VeMultiset* out = ends.Find(kOutputStream);
  const bool out_empty = out == nullptr || out->empty();
  bool divergent = false;
  int present = 0;
  ends.ForEach([&](int32_t s, const VeMultiset& mine) {
    if (s == kOutputStream) return;
    if (s >= stream_count() || !stream_active(s)) return;
    ++present;
    if (!divergent && (out == nullptr ? !mine.empty() : !mine.Equals(*out))) {
      divergent = true;
    }
  });
  // Active streams with no entry hold the empty multiset.
  if (present < active_stream_count() && !out_empty) divergent = true;
  if (divergent) return key.vs;
  // Uniform: no reconciliation is possible until the common largest end
  // time is about to freeze (which is also when the node becomes deletable).
  return out == nullptr ? key.vs : out->MaxVe(key.vs);
}

void LMergeR4::RefreshNode(In3t::Iterator node) {
  index_.SyncAuxBytes(node);
  index_.SetFrontier(node, NodeFrontier(node.key(), node.value()));
}

Status LMergeR4::ApplyInsert(int stream, const StreamElement& element,
                             In3t::Iterator* node_io) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("insert with Ve < Vs: " +
                                   element.ToString());
  }
  if (element.ve() == element.vs()) return Status::Ok();  // empty lifetime
  In3t::Iterator node = *node_io;
  if (node == index_.end()) {
    if (element.vs() < max_stable_) {
      CountDrop();
      return Status::Ok();
    }
    node = index_.AddNode(element.vs(), element.payload());
    *node_io = node;
  }
  In3t::EndsTable& ends = node.value();
  // Materialize both entries before taking references: a robin-hood insert
  // can displace existing slots, so interleaving Insert with held references
  // would dangle.
  ends.Insert(stream, VeMultiset());
  ends.Insert(kOutputStream, VeMultiset());
  VeMultiset* mine = ends.Find(stream);
  VeMultiset* out = ends.Find(kOutputStream);
  mine->Increment(element.ve());
  // Emit only while the key is unfrozen on the output and only when this
  // stream has now presented more events for the key than the output holds —
  // the output never holds more events per key than the richest input.
  if (element.vs() >= max_stable_ && mine->total() > out->total()) {
    EmitInsert(element.payload(), element.vs(), element.ve());
    out->Increment(element.ve());
  } else {
    CountDrop();
  }
  return Status::Ok();
}

Status LMergeR4::ApplyAdjust(int stream, const StreamElement& element,
                             In3t::Iterator* node_io) {
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument("adjust with Ve < Vs: " +
                                   element.ToString());
  }
  In3t::Iterator node = *node_io;
  if (node == index_.end()) {
    CountDrop();
    return Status::Ok();
  }
  VeMultiset* mine_ptr = node.value().Find(stream);
  if (mine_ptr == nullptr) {
    ++inconsistencies_;
    CountDrop();
    return Status::Ok();
  }
  VeMultiset& mine = *mine_ptr;
  if (!mine.Decrement(element.v_old())) {
    // Adjust of an end time this stream never presented: tolerate (the
    // element may target an event dropped during a lagging catch-up).
    ++inconsistencies_;
    CountDrop();
    return Status::Ok();
  }
  if (element.ve() > element.vs()) {
    mine.Increment(element.ve());
  }
  // Output reconciliation is lazy (stable() time); see ReconcileNode.
  return Status::Ok();
}

Status LMergeR4::OnInsert(int stream, const StreamElement& element) {
  CountIndexProbe();
  In3t::Iterator node = index_.SameVsPayload(element.vs(), element.payload());
  const Status status = ApplyInsert(stream, element, &node);
  if (node != index_.end()) RefreshNode(node);
  return status;
}

Status LMergeR4::OnAdjust(int stream, const StreamElement& element) {
  CountIndexProbe();
  In3t::Iterator node = index_.SameVsPayload(element.vs(), element.payload());
  const Status status = ApplyAdjust(stream, element, &node);
  if (node != index_.end()) RefreshNode(node);
  return status;
}

Status LMergeR4::ProcessBatch(int stream,
                              std::span<const StreamElement> batch) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  LM_DCHECK(stream_active(stream));
  size_t i = 0;
  while (i < batch.size()) {
    const StreamElement& head = batch[i];
    if (head.is_stable()) {
      CountIn(stream, head);
      OnStable(stream, head.stable_time());
      ++i;
      continue;
    }
    CountIndexProbe();
    In3t::Iterator node = index_.SameVsPayload(head.vs(), head.payload());
    Status status = Status::Ok();
    size_t j = i;
    for (; j < batch.size(); ++j) {
      const StreamElement& e = batch[j];
      if (e.is_stable() || e.vs() != head.vs() ||
          !(e.payload() == head.payload())) {
        break;
      }
      CountIn(stream, e);
      status = e.is_insert() ? ApplyInsert(stream, e, &node)
                             : ApplyAdjust(stream, e, &node);
      if (!status.ok()) break;
    }
    if (node != index_.end()) RefreshNode(node);
    if (!status.ok()) return status;
    i = j;
  }
  return Status::Ok();
}

Status LMergeR4::ValidateElement(const StreamElement& element) const {
  if (element.is_stable()) return Status::Ok();
  if (element.ve() < element.vs()) {
    return Status::InvalidArgument(
        (element.is_insert() ? std::string("insert with Ve < Vs: ")
                             : std::string("adjust with Ve < Vs: ")) +
        element.ToString());
  }
  return Status::Ok();
}

Status LMergeR4::AdoptOutputView(int stream) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  // The adopting stream continues the snapshot's output: it holds a copy of
  // the output's Ve multiset at every node.  Nodes with no (or an empty)
  // output entry stay empty for the stream too.
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    In3t::EndsTable& ends = it.value();
    const VeMultiset* out = ends.Find(kOutputStream);
    if (out != nullptr && !out->empty()) {
      VeMultiset copy;
      out->ForEach([&copy](Timestamp ve, int64_t count) {
        copy.Increment(ve, count);
      });
      // Insert may displace `out`; the copy is built before it runs.
      ends.Insert(stream, std::move(copy));
    }
    RefreshNode(it);
  }
  return Status::Ok();
}

int LMergeR4::AddStream() {
  const int id = MergeAlgorithm::AddStream();
  // The joiner holds the empty multiset everywhere: every node whose output
  // is non-empty becomes divergent (frontier Vs) until the stream catches
  // up.
  index_.RecomputeFrontiers(
      [this](const VsPayload& key, In3t::EndsTable& ends) {
        return NodeFrontier(key, ends);
      });
  return id;
}

void LMergeR4::ReconcileNode(In3t::Iterator it, int stream, Timestamp t) {
  const Timestamp vs = it.key().vs;
  const Row& payload = it.key().payload;
  In3t::EndsTable& ends = it.value();
  // Materialize the output entry first; Insert may displace slots, so the
  // input pointer is looked up afterwards.
  ends.Insert(kOutputStream, VeMultiset());
  const VeMultiset* in_ptr = ends.Find(stream);
  VeMultiset& out = *ends.Find(kOutputStream);

  // Collect the diffs between the driving input's end-time multiset and the
  // output's, restricted to the adjustable region Ve >= max_stable_.
  // (End times below max_stable_ are fully frozen on the output and — for
  // mutually consistent inputs — already match every stream.)
  // Entries whose end time the incoming stable(t) is about to freeze are
  // "mandatory": compatibility requires fixing them now.  The rest are
  // optional and only reconciled under the exact-match policy.
  std::vector<std::pair<Timestamp, int64_t>> need;    // input has more
  std::vector<std::pair<Timestamp, int64_t>> excess;  // output has more
  auto classify = [this, &need, &excess](Timestamp ve, int64_t diff) {
    if (ve < max_stable_ || diff == 0) return;
    if (diff > 0) {
      need.emplace_back(ve, diff);
    } else {
      excess.emplace_back(ve, -diff);
    }
  };
  // Merge-walk the two ordered multisets.
  std::vector<std::pair<Timestamp, int64_t>> in_list;
  std::vector<std::pair<Timestamp, int64_t>> out_list;
  if (in_ptr != nullptr) {
    in_ptr->ForEach([&in_list](Timestamp ve, int64_t count) {
      in_list.emplace_back(ve, count);
    });
  }
  out.ForEach([&out_list](Timestamp ve, int64_t count) {
    out_list.emplace_back(ve, count);
  });
  size_t i = 0;
  size_t j = 0;
  while (i < in_list.size() || j < out_list.size()) {
    if (j >= out_list.size() ||
        (i < in_list.size() && in_list[i].first < out_list[j].first)) {
      classify(in_list[i].first, in_list[i].second);
      ++i;
    } else if (i >= in_list.size() || out_list[j].first < in_list[i].first) {
      classify(out_list[j].first, -out_list[j].second);
      ++j;
    } else {
      classify(in_list[i].first, in_list[i].second - out_list[j].second);
      ++i;
      ++j;
    }
  }

  // Under count-only reconciliation, process mandatory (about-to-freeze)
  // entries first and stop once only optional work remains.  Both lists are
  // built in ascending Ve order, so entries with Ve < t lead naturally.
  const bool exact = policy_.r4_exact_match;
  // Pair excess output end times with needed ones via adjust() elements.
  size_t ei = 0;
  size_t ni = 0;
  while (ei < excess.size() && ni < need.size()) {
    if (!exact && vs < max_stable_ && excess[ei].first >= t &&
        need[ni].first >= t) {
      break;  // neither side is being frozen: defer (less chatty)
    }
    const int64_t n = std::min(excess[ei].second, need[ni].second);
    for (int64_t k = 0; k < n; ++k) {
      EmitAdjust(payload, vs, excess[ei].first, need[ni].first);
      out.Decrement(excess[ei].first);
      out.Increment(need[ni].first);
    }
    excess[ei].second -= n;
    need[ni].second -= n;
    if (excess[ei].second == 0) ++ei;
    if (need[ni].second == 0) ++ni;
  }
  // Leftover needs: the input holds more events than the output.  New
  // inserts are only legal while the key is unfrozen on the output; for an
  // already half-frozen key, a deferred optional divergence (Ve >= t on an
  // old node under count-only policy) is fine — it stays adjustable.
  for (; ni < need.size(); ++ni) {
    for (int64_t k = 0; k < need[ni].second; ++k) {
      if (vs >= max_stable_) {
        EmitInsert(payload, vs, need[ni].first);
        out.Increment(need[ni].first);
      } else if (exact || need[ni].first < t) {
        ++inconsistencies_;
      }
    }
  }
  // Leftover excess: the output holds events the input lacks.  Retraction
  // (adjust to an empty lifetime) is only legal while the key is unfrozen.
  for (; ei < excess.size(); ++ei) {
    for (int64_t k = 0; k < excess[ei].second; ++k) {
      if (vs >= max_stable_) {
        EmitAdjust(payload, vs, excess[ei].first, vs);
        out.Decrement(excess[ei].first);
      } else if (exact || excess[ei].first < t) {
        ++inconsistencies_;
      }
    }
  }
}

void LMergeR4::OnStable(int stream, Timestamp t) {
  if (policy_.stable_lag > 0 && t != kInfinity) {
    t = t > kMinTimestamp + policy_.stable_lag ? t - policy_.stable_lag
                                               : kMinTimestamp;
  }
  if (t <= max_stable_) return;

  // Frontier-pruned scan: a skipped node (frontier >= t) is uniform across
  // the output and every active stream with common MaxVe >= t, so
  // ReconcileNode would emit nothing and the delete test below would fail —
  // the walk's output is byte-identical to scanning the whole Vs < t range.
  In3t::Iterator it = index_.FirstActionable(t);
  while (it != index_.end()) {
    LM_DCHECK(it.key().vs < t);
    ReconcileNode(it, stream, t);
    const VeMultiset* in_ptr = it.value().Find(stream);
    const Timestamp max_ve =
        in_ptr == nullptr ? it.key().vs : in_ptr->MaxVe(it.key().vs);
    if (max_ve < t) {
      // Every event for this key is fully frozen; the output matches the
      // reference stream for it forever.
      it = index_.FirstActionableFrom(index_.DeleteNode(it), t);
    } else {
      RefreshNode(it);
      it = index_.NextActionable(it, t);
    }
  }

  max_stable_ = t;
  EmitStable(t);
}

void LMergeR4::SaveState(Encoder* encoder) const {
  encoder->WriteI64(max_stable_);
  encoder->WriteI64(inconsistencies_);
  encoder->WriteU32(static_cast<uint32_t>(stream_count()));
  encoder->WriteU32(static_cast<uint32_t>(index_.node_count()));
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    encoder->WriteI64(it.key().vs);
    encoder->WriteRowRef(it.key().payload);
    encoder->WriteU32(static_cast<uint32_t>(it.value().size()));
    it.value().ForEach([encoder](int32_t stream, const VeMultiset& ends) {
      encoder->WriteU32(static_cast<uint32_t>(stream));
      int32_t distinct = 0;
      ends.ForEach([&distinct](Timestamp, int64_t) { ++distinct; });
      encoder->WriteU32(static_cast<uint32_t>(distinct));
      ends.ForEach([encoder](Timestamp ve, int64_t count) {
        encoder->WriteI64(ve);
        encoder->WriteI64(count);
      });
    });
  }
}

Status LMergeR4::RestoreState(Decoder* decoder) {
  Status status = decoder->ReadI64(&max_stable_);
  if (!status.ok()) return status;
  if (!(status = decoder->ReadI64(&inconsistencies_)).ok()) return status;
  uint32_t stream_count_saved = 0;
  if (!(status = decoder->ReadU32(&stream_count_saved)).ok()) return status;
  while (stream_count() < static_cast<int>(stream_count_saved)) {
    MergeAlgorithm::AddStream();
  }
  index_ = In3t();
  uint32_t node_count = 0;
  if (!(status = decoder->ReadU32(&node_count)).ok()) return status;
  for (uint32_t n = 0; n < node_count; ++n) {
    int64_t vs = 0;
    Row payload;
    if (!(status = decoder->ReadI64(&vs)).ok()) return status;
    if (!(status = decoder->ReadRowRef(&payload)).ok()) return status;
    In3t::Iterator node = index_.AddNode(vs, payload);
    uint32_t entries = 0;
    if (!(status = decoder->ReadU32(&entries)).ok()) return status;
    for (uint32_t e = 0; e < entries; ++e) {
      uint32_t stream = 0;
      uint32_t distinct = 0;
      if (!(status = decoder->ReadU32(&stream)).ok()) return status;
      if (!(status = decoder->ReadU32(&distinct)).ok()) return status;
      VeMultiset ends;
      for (uint32_t d = 0; d < distinct; ++d) {
        int64_t ve = 0;
        int64_t count = 0;
        if (!(status = decoder->ReadI64(&ve)).ok()) return status;
        if (!(status = decoder->ReadI64(&count)).ok()) return status;
        if (count <= 0) {
          return Status::InvalidArgument("non-positive multiset count");
        }
        ends.Increment(ve, count);
      }
      node.value().Insert(static_cast<int32_t>(stream), std::move(ends));
    }
  }
  // Rebuild the incremental byte counters and scan frontiers.
  for (auto it = index_.begin(); it != index_.end(); ++it) {
    index_.SyncAuxBytes(it);
  }
  index_.RecomputeFrontiers(
      [this](const VsPayload& key, In3t::EndsTable& ends) {
        return NodeFrontier(key, ends);
      });
  return Status::Ok();
}

}  // namespace lmerge
