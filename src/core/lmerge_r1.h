// Algorithm R1 (Sec. IV-B): insert-only inputs with non-decreasing Vs where
// elements sharing a Vs appear in a deterministic order on every input
// (e.g., rank order out of a Top-k aggregate).  State: one counter per input
// stream counting elements seen with Vs == MaxVs; an insert from stream s is
// forwarded iff s's counter equals the current maximum (s is the first
// stream to present that position).  O(s) time per insert, O(s) space.

#ifndef LMERGE_CORE_LMERGE_R1_H_
#define LMERGE_CORE_LMERGE_R1_H_

#include <vector>

#include "common/checkpoint.h"
#include "core/merge_algorithm.h"

namespace lmerge {

class LMergeR1 : public MergeAlgorithm, public Checkpointable {
 public:
  LMergeR1(int num_streams, ElementSink* sink)
      : MergeAlgorithm(num_streams, sink),
        same_vs_count_(static_cast<size_t>(num_streams), 0) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR1; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  // Batched run-merge over the sorted input run; no per-element dispatch.
  Status ProcessBatch(int stream,
                      std::span<const StreamElement> batch) override;
  Status ValidateElement(const StreamElement& element) const override;

  int AddStream() override {
    same_vs_count_.push_back(0);
    return MergeAlgorithm::AddStream();
  }

  // A stream continuing the snapshot's own output has, by definition,
  // already presented every element emitted for the current Vs.
  Status AdoptOutputView(int stream) override {
    LM_DCHECK(stream >= 0 && stream < stream_count());
    same_vs_count_[static_cast<size_t>(stream)] = max_count_;
    return Status::Ok();
  }

  Checkpointable* checkpointable() override { return this; }
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this)) +
           static_cast<int64_t>(same_vs_count_.capacity() * sizeof(int64_t));
  }

  Timestamp max_vs() const { return max_vs_; }

 private:
  Timestamp max_vs_ = kMinTimestamp;
  // Cached MAX(SameVsCount) for the current max Vs == elements emitted for
  // that Vs.
  int64_t max_count_ = 0;
  std::vector<int64_t> same_vs_count_;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R1_H_
