// in2t — the two-tier index of Algorithm R3 (Sec. IV-D, Fig. 1 left).
//
// Top tier: a red-black tree keyed by (Vs, payload), one node per live
// (not fully frozen) event key.  Bottom tier: per node, a hash table mapping
// input-stream id -> that stream's current Ve for the event, plus one
// distinguished entry (kOutputStream) holding the Ve last emitted on the
// output.  The payload is *shared* across all input streams — the key
// difference from the LMR3- baseline, and the reason LMR3+'s memory is
// nearly independent of the number of inputs (Fig. 2/7).  With interned
// Row handles (common/payload_store.h) the key holds a pointer-sized
// handle, and a payload recurring at many Vs keys is stored once
// process-wide; StateBytes() charges it once per distinct rep via the
// identity ledger.

#ifndef LMERGE_CORE_IN2T_H_
#define LMERGE_CORE_IN2T_H_

#include <cstdint>
#include <utility>

#include "common/payload_ledger.h"
#include "common/timestamp.h"
#include "container/hash_table.h"
#include "container/rbtree.h"
#include "temporal/event.h"

namespace lmerge {

// The bottom-tier key for the output entry ("∞" in the paper's Fig. 1).
inline constexpr int32_t kOutputStream = -1;

class In2t {
 public:
  using EndTable = HashTable<int32_t, Timestamp, IntHash>;
  // Cached per-node byte accounting: the payload's duplicated (per-node)
  // size is computed once at AddNode (the rep is immutable), and the
  // bottom-tier slot bytes are re-synced after table mutations, keeping
  // StateBytes() O(1).  Shared payload bytes are charged through the
  // identity ledger — once per distinct rep, not once per node.
  struct NodeBytesCache {
    int64_t payload = 0;  // unshared (pre-interning) charge for this node
    int64_t table = 0;
  };
  using Tree =
      RbTree<VsPayload, EndTable, VsPayloadLess, MinAugment<NodeBytesCache>>;
  using Iterator = Tree::Iterator;

  // Returns the node with the element's (Vs, payload), or end().
  Iterator SameVsPayload(Timestamp vs, const Row& payload) const {
    return tree_.Find(VsPayloadRef(vs, payload));
  }

  // Adds a node for (vs, payload); must not already exist.  The new node's
  // frontier starts at "never actionable"; the caller sets it via
  // SetFrontier once the bottom tier is populated.
  Iterator AddNode(Timestamp vs, const Row& payload) {
    auto [it, inserted] = tree_.Insert(VsPayload(vs, payload), EndTable());
    LM_DCHECK(inserted);
    NodeBytesCache& cache = tree_.AugExtra(it);
    cache.payload = payload.DeepSizeBytes();
    cache.table = it.value().SlotBytes();
    unshared_payload_bytes_ += cache.payload;
    ledger_.AddRef(it.key().payload);
    table_bytes_ += cache.table;
    return it;
  }

  // Removes the node at `it`; returns the successor.
  Iterator DeleteNode(Iterator it) {
    const NodeBytesCache& cache = tree_.AugExtra(it);
    unshared_payload_bytes_ -= cache.payload;
    ledger_.Release(it.key().payload);
    table_bytes_ -= cache.table;
    return tree_.Erase(it);
  }

  // Re-syncs the cached slot bytes after the node's bottom-tier table may
  // have grown; O(1).
  void SyncTableBytes(Iterator it) {
    NodeBytesCache& cache = tree_.AugExtra(it);
    table_bytes_ += it.value().SlotBytes() - cache.table;
    cache.table = it.value().SlotBytes();
  }

  // --- Frontier bookkeeping for the pruned half-frozen scan ---
  //
  // Per node, the algorithm maintains a conservative "frontier": a lower
  // bound on the smallest stable point t for which stable-processing would
  // act on the node (repair the output or delete it).  The scan then visits,
  // in key order, only nodes with frontier < t; all others are provably
  // untouched.  A frontier may be stale-LOW (extra visit, self-heals) but
  // must never be stale-HIGH.

  void SetFrontier(Iterator it, Timestamp frontier) {
    tree_.SetAugValue(it, frontier);
  }
  Timestamp Frontier(Iterator it) const { return tree_.AugValue(it); }
  Iterator FirstActionable(Timestamp t) const { return tree_.FirstAugBelow(t); }
  Iterator FirstActionableFrom(Iterator it, Timestamp t) const {
    return tree_.FirstAugBelowFrom(it, t);
  }
  Iterator NextActionable(Iterator it, Timestamp t) const {
    return tree_.NextAugBelow(it, t);
  }
  // Recomputes every node's frontier as fn(key, end_table); O(n).
  template <typename Fn>
  void RecomputeFrontiers(Fn&& fn) {
    tree_.RecomputeAug(std::forward<Fn>(fn));
  }

  // First node, in (Vs, payload) order; nodes with Vs < t are exactly the
  // ones FindHalfFrozen(t) must visit, so callers iterate from begin() while
  // key().vs < t (or use the pruned FirstActionable/NextActionable walk).
  Iterator begin() const { return tree_.begin(); }
  Iterator end() const { return tree_.end(); }

  int64_t node_count() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  // Bytes held: tree nodes (which embed the handle-sized keys), interned
  // payload reps charged once per distinct rep, the bottom-tier tables, and
  // the ledger's own bookkeeping.  O(1): all terms are maintained
  // incrementally.
  int64_t StateBytes() const {
    return tree_.NodeBytes() + ledger_.bytes() + ledger_.OverheadBytes() +
           table_bytes_;
  }

  // The pre-interning model: every node owns a private payload copy.  Kept
  // for the paper's memory comparison (bench_state_bytes reports both).
  int64_t StateBytesUnshared() const {
    return tree_.NodeBytes() + unshared_payload_bytes_ + table_bytes_;
  }

  // Distinct payload reps currently referenced by the index.
  int64_t distinct_payloads() const { return ledger_.distinct(); }

 private:
  Tree tree_;
  SharedPayloadLedger ledger_;
  int64_t unshared_payload_bytes_ = 0;
  int64_t table_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_IN2T_H_
