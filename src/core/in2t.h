// in2t — the two-tier index of Algorithm R3 (Sec. IV-D, Fig. 1 left).
//
// Top tier: a red-black tree keyed by (Vs, payload), one node per live
// (not fully frozen) event key.  Bottom tier: per node, a hash table mapping
// input-stream id -> that stream's current Ve for the event, plus one
// distinguished entry (kOutputStream) holding the Ve last emitted on the
// output.  The payload is stored once per node and *shared* across all input
// streams — the key difference from the LMR3- baseline, and the reason
// LMR3+'s memory is nearly independent of the number of inputs (Fig. 2/7).

#ifndef LMERGE_CORE_IN2T_H_
#define LMERGE_CORE_IN2T_H_

#include <cstdint>

#include "common/timestamp.h"
#include "container/hash_table.h"
#include "container/rbtree.h"
#include "temporal/event.h"

namespace lmerge {

// The bottom-tier key for the output entry ("∞" in the paper's Fig. 1).
inline constexpr int32_t kOutputStream = -1;

class In2t {
 public:
  using EndTable = HashTable<int32_t, Timestamp, IntHash>;
  using Tree = RbTree<VsPayload, EndTable, VsPayloadLess>;
  using Iterator = Tree::Iterator;

  // Returns the node with the element's (Vs, payload), or end().
  Iterator SameVsPayload(Timestamp vs, const Row& payload) const {
    return tree_.Find(VsPayloadRef(vs, payload));
  }

  // Adds a node for (vs, payload); must not already exist.
  Iterator AddNode(Timestamp vs, const Row& payload) {
    payload_bytes_ += payload.DeepSizeBytes();
    auto [it, inserted] = tree_.Insert(VsPayload(vs, payload), EndTable());
    LM_DCHECK(inserted);
    return it;
  }

  // Removes the node at `it`; returns the successor.
  Iterator DeleteNode(Iterator it) {
    payload_bytes_ -= it.key().payload.DeepSizeBytes();
    return tree_.Erase(it);
  }

  // First node, in (Vs, payload) order; nodes with Vs < t are exactly the
  // ones FindHalfFrozen(t) must visit, so callers iterate from begin() while
  // key().vs < t.
  Iterator begin() const { return tree_.begin(); }
  Iterator end() const { return tree_.end(); }

  int64_t node_count() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  // Bytes held: tree nodes, shared payload copies, and bottom-tier tables.
  int64_t StateBytes() const {
    int64_t bytes = tree_.NodeBytes() + payload_bytes_;
    for (auto it = tree_.begin(); it != tree_.end(); ++it) {
      bytes += it.value().SlotBytes();
    }
    return bytes;
  }

 private:
  Tree tree_;
  int64_t payload_bytes_ = 0;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_IN2T_H_
