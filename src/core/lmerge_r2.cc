#include "core/lmerge_r2.h"

namespace lmerge {

Status LMergeR2::OnInsert(int stream, const StreamElement& element) {
  (void)stream;
  if (element.vs() < max_vs_) {
    CountDrop();
    return Status::Ok();
  }
  if (element.vs() > max_vs_) {
    seen_.Clear();
    payload_bytes_ = 0;
    max_vs_ = element.vs();
  }
  const auto [unused, inserted] = seen_.Insert(element.payload(), 0);
  if (inserted) {
    payload_bytes_ += element.payload().DeepSizeBytes();
    EmitInsert(element.payload(), element.vs(), element.ve());
  } else {
    CountDrop();
  }
  return Status::Ok();
}

Status LMergeR2::OnAdjust(int stream, const StreamElement& element) {
  (void)stream;
  return Status::FailedPrecondition(
      "LMergeR2 does not support adjust elements: " + element.ToString());
}

void LMergeR2::OnStable(int stream, Timestamp t) {
  (void)stream;
  if (t > max_stable_) {
    max_stable_ = t;
    EmitStable(t);
  }
}

}  // namespace lmerge
