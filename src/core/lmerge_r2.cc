#include "core/lmerge_r2.h"

namespace lmerge {

Status LMergeR2::OnInsert(int stream, const StreamElement& element) {
  (void)stream;
  if (element.vs() < max_vs_) {
    CountDrop();
    return Status::Ok();
  }
  if (element.vs() > max_vs_) {
    seen_.Clear();
    payload_bytes_ = 0;
    max_vs_ = element.vs();
  }
  const auto [unused, inserted] = seen_.Insert(element.payload(), 0);
  if (inserted) {
    payload_bytes_ += element.payload().DeepSizeBytes();
    EmitInsert(element.payload(), element.vs(), element.ve());
  } else {
    CountDrop();
  }
  return Status::Ok();
}

Status LMergeR2::OnAdjust(int stream, const StreamElement& element) {
  (void)stream;
  return Status::FailedPrecondition(
      "LMergeR2 does not support adjust elements: " + element.ToString());
}

void LMergeR2::OnStable(int stream, Timestamp t) {
  (void)stream;
  if (t > max_stable_) {
    max_stable_ = t;
    EmitStable(t);
  }
}

void LMergeR2::SaveState(Encoder* encoder) const {
  encoder->WriteU32(static_cast<uint32_t>(stream_count()));
  encoder->WriteI64(max_stable_);
  encoder->WriteI64(max_vs_);
  encoder->WriteU32(static_cast<uint32_t>(seen_.size()));
  seen_.ForEach([encoder](const Row& payload, char) {
    encoder->WriteRowRef(payload);
  });
}

Status LMergeR2::RestoreState(Decoder* decoder) {
  uint32_t streams = 0;
  Status status = decoder->ReadU32(&streams);
  if (!status.ok()) return status;
  while (stream_count() < static_cast<int>(streams)) {
    MergeAlgorithm::AddStream();
  }
  if (!(status = decoder->ReadI64(&max_stable_)).ok()) return status;
  if (!(status = decoder->ReadI64(&max_vs_)).ok()) return status;
  uint32_t count = 0;
  if (!(status = decoder->ReadU32(&count)).ok()) return status;
  if (count > decoder->remaining() / 4 + 1) {
    return Status::InvalidArgument("seen-set count exceeds buffer");
  }
  seen_.Clear();
  payload_bytes_ = 0;
  for (uint32_t i = 0; i < count; ++i) {
    Row payload;
    if (!(status = decoder->ReadRowRef(&payload)).ok()) return status;
    const auto [unused, inserted] = seen_.Insert(payload, 0);
    if (inserted) payload_bytes_ += payload.DeepSizeBytes();
  }
  return Status::Ok();
}

}  // namespace lmerge
