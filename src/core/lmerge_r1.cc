#include "core/lmerge_r1.h"

#include <algorithm>

namespace lmerge {

Status LMergeR1::OnInsert(int stream, const StreamElement& element) {
  if (element.vs() < max_vs_) {
    CountDrop();
    return Status::Ok();
  }
  if (element.vs() > max_vs_) {
    std::fill(same_vs_count_.begin(), same_vs_count_.end(), 0);
    max_count_ = 0;
    max_vs_ = element.vs();
  }
  // max_count_ caches MAX(SameVsCount) — equivalently, the number of
  // elements already emitted for the current Vs.  It deliberately includes
  // detached streams: what has been emitted stays emitted.
  int64_t& count = same_vs_count_[static_cast<size_t>(stream)];
  if (count == max_count_) {
    EmitInsert(element.payload(), element.vs(), element.ve());
    ++max_count_;
  } else {
    CountDrop();
  }
  ++count;
  return Status::Ok();
}

Status LMergeR1::OnAdjust(int stream, const StreamElement& element) {
  (void)stream;
  return Status::FailedPrecondition(
      "LMergeR1 does not support adjust elements: " + element.ToString());
}

void LMergeR1::OnStable(int stream, Timestamp t) {
  (void)stream;
  if (t > max_stable_) {
    max_stable_ = t;
    EmitStable(t);
  }
}

Status LMergeR1::ProcessBatch(int stream,
                              std::span<const StreamElement> batch) {
  LM_DCHECK(stream >= 0 && stream < stream_count());
  LM_DCHECK(stream_active(stream));
  int64_t& count = same_vs_count_[static_cast<size_t>(stream)];
  for (const StreamElement& element : batch) {
    CountIn(stream, element);
    switch (element.kind()) {
      case ElementKind::kInsert:
        if (element.vs() < max_vs_) {
          CountDrop();
          break;
        }
        if (element.vs() > max_vs_) {
          std::fill(same_vs_count_.begin(), same_vs_count_.end(), 0);
          max_count_ = 0;
          max_vs_ = element.vs();
        }
        if (count == max_count_) {
          EmitInsert(element.payload(), element.vs(), element.ve());
          ++max_count_;
        } else {
          CountDrop();
        }
        ++count;
        break;
      case ElementKind::kAdjust:
        return Status::FailedPrecondition(
            "LMergeR1 does not support adjust elements: " +
            element.ToString());
      case ElementKind::kStable:
        OnStable(stream, element.stable_time());
        break;
    }
  }
  return Status::Ok();
}

Status LMergeR1::ValidateElement(const StreamElement& element) const {
  if (element.is_adjust()) {
    return Status::FailedPrecondition(
        "LMergeR1 does not support adjust elements: " + element.ToString());
  }
  return Status::Ok();
}

void LMergeR1::SaveState(Encoder* encoder) const {
  encoder->WriteU32(static_cast<uint32_t>(stream_count()));
  encoder->WriteI64(max_stable_);
  encoder->WriteI64(max_vs_);
  encoder->WriteI64(max_count_);
  for (const int64_t count : same_vs_count_) encoder->WriteI64(count);
}

Status LMergeR1::RestoreState(Decoder* decoder) {
  uint32_t streams = 0;
  Status status = decoder->ReadU32(&streams);
  if (!status.ok()) return status;
  while (stream_count() < static_cast<int>(streams)) AddStream();
  if (!(status = decoder->ReadI64(&max_stable_)).ok()) return status;
  if (!(status = decoder->ReadI64(&max_vs_)).ok()) return status;
  if (!(status = decoder->ReadI64(&max_count_)).ok()) return status;
  for (uint32_t s = 0; s < streams; ++s) {
    if (!(status = decoder->ReadI64(&same_vs_count_[s])).ok()) return status;
  }
  return Status::Ok();
}

}  // namespace lmerge
