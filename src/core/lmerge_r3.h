// Algorithm R3 (Sec. IV-D) — "LMR3+" in the evaluation.
//
// Inputs may interleave insert(), adjust(), and stable() elements in any
// order (subject only to the constraints stable() itself imposes), and
// (Vs, payload) is a key of every prefix TDB.  State is the in2t index: one
// tree node per live event key, whose bottom-tier hash table records each
// stream's current Ve plus the Ve last emitted on the output.
//
// Output policy (Sec. V-A) is pluggable:
//  - adjust() elements are by default absorbed into the index and reconciled
//    lazily when a stable() element would otherwise freeze a divergence
//    (Theorem 1: never more insert/adjust output than inserts received);
//    AdjustPolicy::kEager reflects them immediately instead.
//  - inserts are by default emitted on first sight; alternative policies
//    delay emission (leading stream only / half-frozen / fraction quorum).
//
// Processing a stable(t) from stream s walks all index nodes with Vs < t and
// repairs the three compatibility violations identified in the paper before
// propagating the stable: (1) output event with no input event on s,
// (2) output event about to fully freeze while diverging from s,
// (3) input event about to fully freeze while diverging from the output.
// Nodes whose input Ve is < t are fully frozen and removed from the index.

#ifndef LMERGE_CORE_LMERGE_R3_H_
#define LMERGE_CORE_LMERGE_R3_H_

#include <vector>

#include "common/checkpoint.h"
#include "core/in2t.h"
#include "core/merge_algorithm.h"
#include "core/merge_policy.h"

namespace lmerge {

class LMergeR3 : public MergeAlgorithm, public Checkpointable {
 public:
  LMergeR3(int num_streams, ElementSink* sink,
           MergePolicy policy = MergePolicy::Default())
      : MergeAlgorithm(num_streams, sink),
        policy_(policy),
        last_stable_(static_cast<size_t>(num_streams), kMinTimestamp) {}

  AlgorithmCase algorithm_case() const override { return AlgorithmCase::kR3; }

  Status OnInsert(int stream, const StreamElement& element) override;
  Status OnAdjust(int stream, const StreamElement& element) override;
  void OnStable(int stream, Timestamp t) override;

  // Batched delivery: groups consecutive elements with the same
  // (Vs, payload) into runs so one index probe and one frontier refresh
  // serve the whole run; coalesces adjusts a later adjust in the same run
  // overwrites (lazy policy only).  Output is byte-identical to
  // element-wise delivery.
  Status ProcessBatch(int stream,
                      std::span<const StreamElement> batch) override;
  Status ValidateElement(const StreamElement& element) const override;

  int AddStream() override;
  Status AdoptOutputView(int stream) override;

  int64_t StateBytes() const override {
    return static_cast<int64_t>(sizeof(*this)) + index_.StateBytes() +
           static_cast<int64_t>(last_stable_.capacity() * sizeof(Timestamp));
  }

  int64_t StateBytesUnshared() const override {
    return static_cast<int64_t>(sizeof(*this)) + index_.StateBytesUnshared() +
           static_cast<int64_t>(last_stable_.capacity() * sizeof(Timestamp));
  }

  int64_t index_node_count() const { return index_.node_count(); }
  int64_t distinct_payloads() const { return index_.distinct_payloads(); }
  const MergePolicy& policy() const { return policy_; }

  // Checkpointable: snapshots MaxStable, per-stream stable points, and the
  // whole in2t index — enough for a fresh instance (constructed with the
  // same policy) to continue the merge exactly where this one stood
  // (Sec. II-4/5 jumpstart and cutover).
  void SaveState(Encoder* encoder) const override;
  Status RestoreState(Decoder* decoder) override;
  Checkpointable* checkpointable() override { return this; }

 private:
  // Whether the insert-emission policy allows emitting now.
  bool PolicyAllowsEmit(int stream, const In2t::EndTable& ends) const;

  // Conservative per-node frontier: the smallest of the output's Ve and
  // every active stream's Ve for the node (absent views count as Vs, the
  // empty lifetime).  No stable(t) with t <= frontier can act on the node,
  // so the pruned scan in OnStable may skip it.
  Timestamp NodeFrontier(const VsPayload& key, In2t::EndTable& ends) const;
  // Re-syncs the node's cached byte counts and frontier after mutations.
  void RefreshNode(In2t::Iterator node);

  // Core insert/adjust steps against a pre-probed node iterator (end() when
  // the key is absent; updated if a node is created).  The caller refreshes
  // the node's frontier afterwards — once per run in the batched path.
  Status ApplyInsert(int stream, const StreamElement& element,
                     In2t::Iterator* node_io);
  Status ApplyAdjust(int stream, const StreamElement& element,
                     In2t::Iterator* node_io);

  MergePolicy policy_;
  In2t index_;
  // Latest stable point seen per input stream (drives kLeadingStreamOnly).
  std::vector<Timestamp> last_stable_;
};

}  // namespace lmerge

#endif  // LMERGE_CORE_LMERGE_R3_H_
