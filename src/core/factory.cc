#include "core/factory.h"

#include "core/counting_merge.h"
#include "core/lmerge_r0.h"
#include "core/lmerge_r1.h"
#include "core/lmerge_r2.h"
#include "core/lmerge_r3.h"
#include "core/lmerge_r3_minus.h"
#include "core/lmerge_r4.h"

namespace lmerge {

const char* MergeVariantName(MergeVariant variant) {
  switch (variant) {
    case MergeVariant::kLMR0:
      return "LMR0";
    case MergeVariant::kLMR1:
      return "LMR1";
    case MergeVariant::kLMR2:
      return "LMR2";
    case MergeVariant::kLMR3Plus:
      return "LMR3+";
    case MergeVariant::kLMR3Minus:
      return "LMR3-";
    case MergeVariant::kLMR4:
      return "LMR4";
    case MergeVariant::kCounting:
      return "Counting";
  }
  return "?";
}

MergeVariant VariantForCase(AlgorithmCase algorithm_case) {
  switch (algorithm_case) {
    case AlgorithmCase::kR0:
      return MergeVariant::kLMR0;
    case AlgorithmCase::kR1:
      return MergeVariant::kLMR1;
    case AlgorithmCase::kR2:
      return MergeVariant::kLMR2;
    case AlgorithmCase::kR3:
      return MergeVariant::kLMR3Plus;
    case AlgorithmCase::kR4:
      return MergeVariant::kLMR4;
  }
  return MergeVariant::kLMR4;
}

std::unique_ptr<MergeAlgorithm> CreateMergeAlgorithm(MergeVariant variant,
                                                     int num_streams,
                                                     ElementSink* sink,
                                                     MergePolicy policy) {
  switch (variant) {
    case MergeVariant::kLMR0:
      return std::make_unique<LMergeR0>(num_streams, sink);
    case MergeVariant::kLMR1:
      return std::make_unique<LMergeR1>(num_streams, sink);
    case MergeVariant::kLMR2:
      return std::make_unique<LMergeR2>(num_streams, sink);
    case MergeVariant::kLMR3Plus:
      return std::make_unique<LMergeR3>(num_streams, sink, policy);
    case MergeVariant::kLMR3Minus:
      return std::make_unique<LMergeR3Minus>(num_streams, sink);
    case MergeVariant::kLMR4:
      return std::make_unique<LMergeR4>(num_streams, sink, policy);
    case MergeVariant::kCounting:
      return std::make_unique<CountingMerge>(num_streams, sink);
  }
  return nullptr;
}

std::unique_ptr<MergeAlgorithm> CreateMergeAlgorithmForProperties(
    const std::vector<StreamProperties>& input_properties, int num_streams,
    ElementSink* sink, MergePolicy policy) {
  const AlgorithmCase algorithm_case = ChooseAlgorithm(input_properties);
  return CreateMergeAlgorithm(VariantForCase(algorithm_case), num_streams,
                              sink, policy);
}

}  // namespace lmerge
