#include "workload/subquery.h"

#include "operators/aggregate.h"
#include "operators/alter_lifetime.h"
#include "stream/sink.h"

namespace lmerge::workload {

ElementSequence RunThrough(Operator* entry, Operator* tail,
                           const ElementSequence& input) {
  CollectingSink sink;
  tail->AddSink(&sink);
  for (const StreamElement& element : input) entry->Consume(0, element);
  return sink.TakeElements();
}

ElementSequence MakeAdjustHeavyStream(const ElementSequence& input,
                                      Timestamp window_size,
                                      Timestamp max_lifetime,
                                      int64_t group_column) {
  AggregateConfig config;
  config.window_size = window_size;
  config.group_column = group_column;
  config.function = AggregateFunction::kCount;
  config.mode = AggregateMode::kSpeculative;
  GroupedAggregate aggregate("agg", config);
  AlterLifetime alter("alter", max_lifetime);
  aggregate.AddDownstream(&alter, 0);
  return RunThrough(&aggregate, &alter, input);
}

double AdjustFraction(const ElementSequence& elements) {
  if (elements.empty()) return 0.0;
  int64_t adjusts = 0;
  for (const StreamElement& element : elements) {
    if (element.is_adjust()) ++adjusts;
  }
  return static_cast<double>(adjusts) /
         static_cast<double>(elements.size());
}

}  // namespace lmerge::workload
