#include "workload/ticker.h"

#include <algorithm>

#include "common/check.h"

namespace lmerge::workload {

std::string TickerSymbol(int64_t i) { return "SYM" + std::to_string(i); }

LogicalHistory GenerateTickerHistory(const TickerConfig& config) {
  LM_CHECK(config.num_symbols >= 1);
  LM_CHECK(config.quotes_per_symbol >= 1);
  Rng rng(config.seed);
  LogicalHistory history;

  struct SymbolState {
    int64_t price;
    Timestamp last_quote = kMinTimestamp;
    size_t open_event = 0;  // index into history.events of the open quote
    bool has_open = false;
  };
  std::vector<SymbolState> symbols(
      static_cast<size_t>(config.num_symbols),
      SymbolState{config.start_price_cents});

  Timestamp now = 0;
  const int64_t total_quotes =
      config.num_symbols * config.quotes_per_symbol;
  std::vector<int64_t> remaining(static_cast<size_t>(config.num_symbols),
                                 config.quotes_per_symbol);
  int64_t issued = 0;
  bool quote_since_stable = false;
  while (issued < total_quotes) {
    now += 1 + rng.UniformInt(0, std::max<Timestamp>(0, config.max_gap - 1));
    // Pick a symbol that still has quotes to issue.
    int64_t s = rng.UniformInt(0, config.num_symbols - 1);
    for (int64_t probe = 0; probe < config.num_symbols; ++probe) {
      const int64_t candidate = (s + probe) % config.num_symbols;
      if (remaining[static_cast<size_t>(candidate)] > 0) {
        s = candidate;
        break;
      }
    }
    SymbolState& symbol = symbols[static_cast<size_t>(s)];
    symbol.price = std::max<int64_t>(
        1, symbol.price +
               rng.UniformInt(-config.max_move_cents, config.max_move_cents));
    // The new quote supersedes the previous one.
    if (symbol.has_open) {
      history.events[symbol.open_event].ve = now;
    }
    history.events.emplace_back(
        Row({Value(TickerSymbol(s)), Value(symbol.price)}), now, kInfinity);
    symbol.open_event = history.events.size() - 1;
    symbol.has_open = true;
    symbol.last_quote = now;
    --remaining[static_cast<size_t>(s)];
    ++issued;
    quote_since_stable = true;
    if (quote_since_stable && rng.Bernoulli(config.stable_freq)) {
      history.stable_times.push_back(now + 1);
      quote_since_stable = false;
    }
  }
  // The history's events must be ordered by Vs for the variant machinery.
  std::sort(history.events.begin(), history.events.end(),
            [](const Event& a, const Event& b) { return EventLess()(a, b); });
  return history;
}

}  // namespace lmerge::workload
