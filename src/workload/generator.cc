#include "workload/generator.h"

#include <algorithm>

#include "common/check.h"
#include "common/row.h"

namespace lmerge::workload {

std::string RandomBlob(Rng* rng, int64_t bytes) {
  std::string blob;
  blob.resize(static_cast<size_t>(bytes));
  for (int64_t i = 0; i < bytes; ++i) {
    blob[static_cast<size_t>(i)] =
        static_cast<char>('a' + rng->UniformInt(0, 25));
  }
  return blob;
}

LogicalHistory GenerateHistory(const GeneratorConfig& config) {
  LM_CHECK(config.num_inserts > 0);
  Rng rng(config.seed);
  std::vector<Row> pool;
  if (config.payload_pool_size > 0) {
    pool.reserve(static_cast<size_t>(config.payload_pool_size));
    for (int64_t i = 0; i < config.payload_pool_size; ++i) {
      pool.push_back(
          Row::OfIntAndString(rng.UniformInt(0, config.key_range),
                              RandomBlob(&rng, config.payload_string_bytes)));
    }
  }
  LogicalHistory history;
  history.events.reserve(static_cast<size_t>(config.num_inserts));
  Timestamp now = 0;
  bool insert_since_stable = false;
  for (int64_t i = 0; i < config.num_inserts; ++i) {
    now += 1 + rng.UniformInt(0, std::max<Timestamp>(0, config.max_gap - 1));
    Timestamp duration = config.event_duration;
    if (config.duration_jitter > 0) {
      duration += rng.UniformInt(-config.duration_jitter,
                                 config.duration_jitter);
    }
    if (duration < 1) duration = 1;
    Row payload =
        pool.empty()
            ? Row::OfIntAndString(
                  rng.UniformInt(0, config.key_range),
                  RandomBlob(&rng, config.payload_string_bytes))
            : pool[static_cast<size_t>(
                  rng.UniformInt(0, config.payload_pool_size - 1))];
    history.events.emplace_back(std::move(payload), now, now + duration);
    insert_since_stable = true;
    if (insert_since_stable && rng.Bernoulli(config.stable_freq)) {
      history.stable_times.push_back(now + 1);
      insert_since_stable = false;
    }
  }
  return history;
}

ElementSequence RenderInOrder(const LogicalHistory& history) {
  ElementSequence out;
  out.reserve(history.events.size() + history.stable_times.size());
  size_t ei = 0;
  size_t si = 0;
  while (ei < history.events.size() || si < history.stable_times.size()) {
    if (si >= history.stable_times.size() ||
        (ei < history.events.size() &&
         history.events[ei].vs < history.stable_times[si])) {
      const Event& e = history.events[ei++];
      out.push_back(StreamElement::Insert(e.payload, e.vs, e.ve));
    } else {
      out.push_back(StreamElement::Stable(history.stable_times[si++]));
    }
  }
  return out;
}

namespace {

struct Atom {
  int64_t release;      // virtual emission position (lower = earlier)
  int64_t sequence;     // tie-break preserving per-event ordering
  Timestamp constraint;  // stable(t) with t > constraint must wait for this
  StreamElement element;
};

}  // namespace

ElementSequence GeneratePhysicalVariant(const LogicalHistory& history,
                                        const VariantOptions& options) {
  Rng rng(options.seed);
  std::vector<Atom> atoms;
  atoms.reserve(history.events.size() * 2);
  int64_t sequence = 0;
  for (size_t i = 0; i < history.events.size(); ++i) {
    const Event& e = history.events[i];
    int64_t release = static_cast<int64_t>(i) * 2;
    if (rng.Bernoulli(options.disorder_fraction)) {
      release += rng.UniformInt(0, 2 * options.max_disorder_elements);
    }
    const bool split = rng.Bernoulli(options.split_probability);
    if (split) {
      Timestamp provisional;
      if (options.provisional_open) {
        provisional = kInfinity;
      } else if (e.ve == kInfinity) {
        // Open-ended final lifetime: present a finite guess first, widen to
        // infinity later.
        provisional = e.vs + 1 + rng.UniformInt(0, 1000000);
      } else {
        // Provisional end overshoots or undershoots the final end; stays > Vs.
        const Timestamp span = e.ve - e.vs;
        provisional = e.vs + std::max<Timestamp>(
                                 1, span + rng.UniformInt(-span / 2, span));
      }
      if (provisional == e.ve) {
        provisional = e.ve == kInfinity ? e.ve - 1 : e.ve + 1;
      }
      atoms.push_back(Atom{release, sequence++, e.vs,
                           StreamElement::Insert(e.payload, e.vs,
                                                 provisional)});
      const int64_t adjust_release =
          release + 1 + rng.UniformInt(0, options.max_disorder_elements);
      atoms.push_back(
          Atom{adjust_release, sequence++,
               std::min(provisional, e.ve),
               StreamElement::Adjust(e.payload, e.vs, provisional, e.ve)});
    } else {
      atoms.push_back(Atom{release, sequence++, e.vs,
                           StreamElement::Insert(e.payload, e.vs, e.ve)});
    }
  }
  std::sort(atoms.begin(), atoms.end(), [](const Atom& a, const Atom& b) {
    if (a.release != b.release) return a.release < b.release;
    return a.sequence < b.sequence;
  });

  // suffix_min[j] = smallest constraint among atoms[j..]; a stable(t) may be
  // emitted before atom j iff suffix_min[j] >= t.
  std::vector<Timestamp> suffix_min(atoms.size() + 1, kInfinity);
  for (size_t j = atoms.size(); j > 0; --j) {
    suffix_min[j - 1] = std::min(suffix_min[j], atoms[j - 1].constraint);
  }

  ElementSequence out;
  out.reserve(atoms.size() + history.stable_times.size());
  size_t si = 0;
  int64_t stable_kept = 0;
  auto emit_stables_before = [&](size_t j) {
    while (si < history.stable_times.size() &&
           suffix_min[j] >= history.stable_times[si]) {
      if (stable_kept % std::max<int64_t>(1, options.stable_thinning) == 0) {
        out.push_back(StreamElement::Stable(history.stable_times[si]));
      }
      ++stable_kept;
      ++si;
    }
  };
  for (size_t j = 0; j < atoms.size(); ++j) {
    emit_stables_before(j);
    out.push_back(atoms[j].element);
  }
  emit_stables_before(atoms.size());
  return out;
}

ElementSequence GenerateStream(const GeneratorConfig& config) {
  const LogicalHistory history = GenerateHistory(config);
  VariantOptions options;
  options.disorder_fraction = config.disorder_fraction;
  options.max_disorder_elements = config.max_disorder_elements;
  options.split_probability = config.open_lifetimes ? 1.0 : 0.0;
  options.provisional_open = config.open_lifetimes;
  options.seed = config.seed ^ 0x5bd1e995;
  return GeneratePhysicalVariant(history, options);
}

}  // namespace lmerge::workload
