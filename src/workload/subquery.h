// Sub-query helpers (Sec. VI-B): the generated streams carry disorder but no
// adjust() elements — adjust traffic "is naturally produced during query
// processing", so the evaluation pushes streams through small query
// fragments first.  The canonical fragment is an aggressive aggregate
// followed by a lifetime modification.

#ifndef LMERGE_WORKLOAD_SUBQUERY_H_
#define LMERGE_WORKLOAD_SUBQUERY_H_

#include <vector>

#include "operators/operator.h"
#include "stream/element.h"

namespace lmerge::workload {

// Feeds `input` into `entry` (port 0) and returns everything `tail` emits.
// `entry` and `tail` may be the same operator.  The caller keeps ownership
// and pre-wired connections between entry and tail.
ElementSequence RunThrough(Operator* entry, Operator* tail,
                           const ElementSequence& input);

// The paper's adjust-producing fragment: a speculative grouped count over
// tumbling windows (early answers revised on disordered stragglers), then
// lifetimes clipped to `max_lifetime`.  Returns the fragment's output for
// `input`.  Adjust traffic grows with input disorder (36% of the output at
// 50% disorder in Sec. VI-D).
ElementSequence MakeAdjustHeavyStream(const ElementSequence& input,
                                      Timestamp window_size,
                                      Timestamp max_lifetime,
                                      int64_t group_column = 0);

// Fraction of `elements` that are adjust() elements.
double AdjustFraction(const ElementSequence& elements);

}  // namespace lmerge::workload

#endif  // LMERGE_WORKLOAD_SUBQUERY_H_
