// Synthetic stream generation, mirroring the commercial-grade test
// generator the paper uses (Sec. VI-B, ref [26]).
//
// Each event has two payload fields: an integer in [0, key_range] and a
// random string blob (1000 bytes by default).  Generation knobs match the
// paper:
//   StableFreq    — probability an element is a stable() element (with at
//                   least one insert between consecutive stables);
//   EventDuration — event lifetime (ticks), jittered around the mean;
//   MaxGap        — maximum application-time gap between elements;
//   Disorder      — fraction of inserts presented out of order (their Vs
//                   moved behind later-emitted elements, never behind the
//                   last stable point).
//
// GeneratePhysicalVariant re-presents one logical history as a *physically
// different but equivalent* stream (Table I's Phy1/Phy2): events may be
// split into an early insert with a provisional lifetime plus a later
// adjust; local reordering and stable placement differ per seed.  All
// variants reconstitute to the same TDB, which the equivalence tests verify.

#ifndef LMERGE_WORKLOAD_GENERATOR_H_
#define LMERGE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/timestamp.h"
#include "stream/element.h"
#include "temporal/event.h"

namespace lmerge::workload {

struct GeneratorConfig {
  int64_t num_inserts = 10000;
  double stable_freq = 0.01;
  Timestamp event_duration = 2'000'000;   // 2 s in microsecond ticks
  Timestamp duration_jitter = 500'000;    // +/- jitter on lifetimes
  Timestamp max_gap = 1'000;              // app-time gap between starts
  double disorder_fraction = 0.2;
  int64_t max_disorder_elements = 64;     // how far a late element slips
  int64_t key_range = 400;
  int64_t payload_string_bytes = 1000;
  // When > 0, whole payload rows (int + blob) are drawn from a pool of this
  // many pre-generated rows instead of being unique per event — the
  // dictionary-compressible shape of real feeds (ticker symbols, device
  // ids, status strings), and the workload where payload interning pays.
  // (Vs, payload) stays a key because Vs is strictly increasing.  0 keeps
  // every payload unique.
  int64_t payload_pool_size = 0;
  bool open_lifetimes = false;            // emit Ve=inf then adjust later
  uint64_t seed = 42;
};

// The logical history a generator run denotes: final events plus the stable
// schedule (time, position) used to interleave stable() elements.
struct LogicalHistory {
  std::vector<Event> events;   // ordered by Vs; (Vs, payload) unique
  std::vector<Timestamp> stable_times;  // ascending
};

// Builds the logical history for `config` (deterministic in the seed).
LogicalHistory GenerateHistory(const GeneratorConfig& config);

// One in-order, insert-only physical presentation of `history` (case R0/R1
// material): inserts ascending by Vs with stable() elements interleaved.
ElementSequence RenderInOrder(const LogicalHistory& history);

// Options controlling how a physical variant diverges from the canonical
// presentation.
struct VariantOptions {
  double disorder_fraction = 0.2;
  int64_t max_disorder_elements = 64;
  // Probability an event is presented as insert(provisional) + adjust(final)
  // instead of a single exact insert (creates revision traffic).
  double split_probability = 0.3;
  // Provisional lifetime is +infinity (open) rather than a random overshoot.
  bool provisional_open = false;
  // Keep only every k-th stable element (1 = all).
  int64_t stable_thinning = 1;
  uint64_t seed = 7;
};

// Renders a physically divergent presentation of `history`.  The result is a
// valid element sequence (validator-clean) whose full reconstitution equals
// the history's TDB.
ElementSequence GeneratePhysicalVariant(const LogicalHistory& history,
                                        const VariantOptions& options);

// Convenience: canonical disordered stream per the paper's generator — the
// history rendered with the config's own disorder fraction, insert-only.
ElementSequence GenerateStream(const GeneratorConfig& config);

// A random payload string of `bytes` characters.
std::string RandomBlob(Rng* rng, int64_t bytes);

}  // namespace lmerge::workload

#endif  // LMERGE_WORKLOAD_GENERATOR_H_
