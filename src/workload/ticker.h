// Stock-ticker workload: the revision-heavy feed shape of Sec. I
// ("commercial stock ticker feeds issue revision tuples to amend previously
// issued tuples") and the real-data sanity check of Sec. VI-B footnote 2.
//
// Model: per symbol, a sequence of quotes; each quote event's payload is
// (symbol, price) and its lifetime spans from its own timestamp until the
// next quote for that symbol supersedes it (the final quote stays open).
// Physically, a feed naturally presents a quote as insert(symbol/price, t,
// +inf) followed later by an adjust trimming it when the successor arrives —
// exactly the provisional-open presentation GeneratePhysicalVariant emits,
// so divergent exchange feeds are derived the usual way.

#ifndef LMERGE_WORKLOAD_TICKER_H_
#define LMERGE_WORKLOAD_TICKER_H_

#include <cstdint>

#include "workload/generator.h"

namespace lmerge::workload {

struct TickerConfig {
  int64_t num_symbols = 8;
  int64_t quotes_per_symbol = 200;
  int64_t start_price_cents = 10000;
  // Max absolute price move between consecutive quotes, in cents.
  int64_t max_move_cents = 50;
  // Max application-time gap between consecutive quotes (any symbol).
  Timestamp max_gap = 1000;
  double stable_freq = 0.02;
  uint64_t seed = 2012;
};

// Builds the logical history of the ticker: one event per quote with
// lifetime [quote time, next quote time for that symbol), final quotes
// open-ended.  (Vs, payload) is a key (a symbol quotes at most once per
// tick).  Use GeneratePhysicalVariant (typically with provisional_open) to
// derive divergent physical feeds.
LogicalHistory GenerateTickerHistory(const TickerConfig& config);

// Symbol name for id `i` ("SYM0", "SYM1", ...).
std::string TickerSymbol(int64_t i);

}  // namespace lmerge::workload

#endif  // LMERGE_WORKLOAD_TICKER_H_
