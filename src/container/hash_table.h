// A from-scratch open-addressing hash table with robin-hood probing.
//
// Used as the second tier of in2t/in3t (stream id -> per-stream state, with
// the distinguished output entry), by LMergeR2's per-Vs payload set, and by
// substrate operators (grouped aggregation, join sides).  Linear probing with
// robin-hood displacement keeps probe sequences short at high load factors;
// deletion uses backward-shift (no tombstones), which keeps iteration and
// memory accounting simple.

#ifndef LMERGE_CONTAINER_HASH_TABLE_H_
#define LMERGE_CONTAINER_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"

namespace lmerge {

template <typename Key, typename T, typename Hash, typename Eq = std::equal_to<Key>>
class HashTable {
 public:
  explicit HashTable(int64_t initial_capacity = 8) {
    int64_t cap = 8;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(static_cast<size_t>(cap));
  }

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int64_t capacity() const { return static_cast<int64_t>(slots_.size()); }

  // Approximate heap bytes held by the table's slot array.
  int64_t SlotBytes() const {
    return capacity() * static_cast<int64_t>(sizeof(Slot));
  }

  // Inserts (key, value) if absent; returns pointer to the stored value and
  // whether an insertion happened.
  std::pair<T*, bool> Insert(Key key, T value) {
    if ((size_ + 1) * 8 > capacity() * 7) Grow();
    return InsertNoGrow(std::move(key), std::move(value));
  }

  // Returns the value for `key`, or nullptr.
  T* Find(const Key& key) {
    const int64_t cap = capacity();
    int64_t idx = Bucket(key);
    int64_t distance = 0;
    while (true) {
      Slot& slot = slots_[static_cast<size_t>(idx)];
      if (!slot.occupied) return nullptr;
      if (slot.distance < distance) return nullptr;  // robin-hood early out
      if (eq_(slot.kv.first, key)) return &slot.kv.second;
      idx = (idx + 1) & (cap - 1);
      ++distance;
    }
  }
  const T* Find(const Key& key) const {
    return const_cast<HashTable*>(this)->Find(key);
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  // Returns existing value or default-inserts one.
  T& operator[](const Key& key) {
    if (T* v = Find(key)) return *v;
    return *Insert(key, T{}).first;
  }

  // Erases `key`; returns whether it was present.  Backward-shift deletion.
  bool Erase(const Key& key) {
    const int64_t cap = capacity();
    int64_t idx = Bucket(key);
    int64_t distance = 0;
    while (true) {
      Slot& slot = slots_[static_cast<size_t>(idx)];
      if (!slot.occupied || slot.distance < distance) return false;
      if (eq_(slot.kv.first, key)) break;
      idx = (idx + 1) & (cap - 1);
      ++distance;
    }
    // Shift the following cluster back by one.
    int64_t hole = idx;
    while (true) {
      const int64_t next = (hole + 1) & (cap - 1);
      Slot& next_slot = slots_[static_cast<size_t>(next)];
      if (!next_slot.occupied || next_slot.distance == 0) break;
      Slot& hole_slot = slots_[static_cast<size_t>(hole)];
      hole_slot.kv = std::move(next_slot.kv);
      hole_slot.distance = next_slot.distance - 1;
      hole_slot.occupied = true;
      hole = next;
    }
    slots_[static_cast<size_t>(hole)] = Slot{};
    --size_;
    return true;
  }

  void Clear() {
    for (Slot& slot : slots_) slot = Slot{};
    size_ = 0;
  }

  // Invokes fn(key, value) for every entry (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.occupied) fn(slot.kv.first, slot.kv.second);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.occupied) fn(slot.kv.first, slot.kv.second);
    }
  }

 private:
  struct Slot {
    std::pair<Key, T> kv;
    int32_t distance = 0;
    bool occupied = false;
  };

  int64_t Bucket(const Key& key) const {
    return static_cast<int64_t>(hash_(key)) & (capacity() - 1);
  }

  std::pair<T*, bool> InsertNoGrow(Key key, T value) {
    const int64_t cap = capacity();
    int64_t idx = Bucket(key);
    int32_t distance = 0;
    std::pair<Key, T> carrying(std::move(key), std::move(value));
    T* result = nullptr;
    while (true) {
      Slot& slot = slots_[static_cast<size_t>(idx)];
      if (!slot.occupied) {
        slot.kv = std::move(carrying);
        slot.distance = distance;
        slot.occupied = true;
        ++size_;
        return {result != nullptr ? result : &slot.kv.second, true};
      }
      if (result == nullptr && slot.distance >= distance &&
          eq_(slot.kv.first, carrying.first)) {
        return {&slot.kv.second, false};
      }
      if (slot.distance < distance) {
        // Robin-hood: displace the richer resident and keep probing with it.
        std::swap(slot.kv, carrying);
        std::swap(slot.distance, distance);
        if (result == nullptr) {
          // The displaced position holds the element we inserted.
          result = &slot.kv.second;
        }
      }
      idx = (idx + 1) & (cap - 1);
      ++distance;
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(old.size() * 2);
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.occupied) {
        InsertNoGrow(std::move(slot.kv.first), std::move(slot.kv.second));
      }
    }
  }

  std::vector<Slot> slots_;
  int64_t size_ = 0;
  Hash hash_;
  Eq eq_;
};

// Hash functor for integral stream ids.
struct IntHash {
  uint64_t operator()(int64_t v) const {
    uint64_t x = static_cast<uint64_t>(v);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }
  uint64_t operator()(int32_t v) const {
    return (*this)(static_cast<int64_t>(v));
  }
};

}  // namespace lmerge

#endif  // LMERGE_CONTAINER_HASH_TABLE_H_
