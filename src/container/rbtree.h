// A from-scratch red-black tree with map semantics.
//
// This is the ordered index used as the top tier of the in2t and in3t
// structures of Sec. IV (keyed by (Vs, payload)) and as the third tier of
// in3t (keyed by Ve).  The paper's stable() processing performs ordered range
// scans over half-frozen nodes, so the tree exposes begin()/LowerBound()
// iteration plus iterator-based erase that returns the successor.
//
// The implementation is a textbook left-leaning-free classic RB tree
// (CLRS-style insert/erase fixup) with parent pointers for O(1) amortized
// iterator increment.  ValidateInvariants() verifies the RB properties and is
// exercised by randomized tests against std::map.

#ifndef LMERGE_CONTAINER_RBTREE_H_
#define LMERGE_CONTAINER_RBTREE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <utility>

#include "common/check.h"

namespace lmerge {

// Default augmentation policy: no per-node augmentation, zero overhead (the
// node member is an empty [[no_unique_address]] struct).
struct NoAugment {
  static constexpr bool kEnabled = false;
  struct Storage {};
};

// Min-augmentation policy: every node carries a caller-set int64_t (`self`)
// plus the subtree minimum of those values, maintained through rotations,
// inserts and erases.  FirstAugBelow/NextAugBelow then enumerate, in key
// order, exactly the nodes whose `self` is below a threshold, visiting
// O(log n) nodes per hit instead of walking the whole range.  This powers
// the frontier-pruned stable-point scans of the LMerge in2t/in3t indexes.
//
// `Extra` is caller-owned per-node scratch storage (e.g. cached byte counts)
// that rides in the same node allocation; it does not affect the tree.
template <typename Extra = NoAugment::Storage>
struct MinAugment {
  static constexpr bool kEnabled = true;
  // Identity for min(): a fresh node never matches FirstAugBelow until the
  // caller sets a real value.
  static constexpr int64_t kNone = std::numeric_limits<int64_t>::max();
  struct Storage {
    int64_t self = kNone;
    int64_t subtree_min = kNone;
    [[no_unique_address]] Extra extra{};
  };
};

template <typename Key, typename T, typename Compare = std::less<Key>,
          typename Aug = NoAugment>
class RbTree {
 private:
  enum Color : uint8_t { kRed, kBlack };

  struct Node {
    Key key;
    T value;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* parent = nullptr;
    Color color = kRed;
    [[no_unique_address]] typename Aug::Storage aug{};

    Node(Key k, T v) : key(std::move(k)), value(std::move(v)) {}
  };

 public:
  class Iterator {
   public:
    Iterator() = default;

    const Key& key() const { return node_->key; }
    T& value() const { return node_->value; }

    Iterator& operator++() {
      node_ = Successor(node_);
      return *this;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.node_ == b.node_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.node_ != b.node_;
    }

   private:
    friend class RbTree;
    explicit Iterator(Node* node) : node_(node) {}
    Node* node_ = nullptr;
  };

  RbTree() = default;
  explicit RbTree(Compare cmp) : cmp_(std::move(cmp)) {}
  ~RbTree() { Clear(); }

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;
  RbTree(RbTree&& other) noexcept
      : root_(other.root_), size_(other.size_), cmp_(std::move(other.cmp_)) {
    other.root_ = nullptr;
    other.size_ = 0;
  }
  RbTree& operator=(RbTree&& other) noexcept {
    if (this != &other) {
      Clear();
      root_ = other.root_;
      size_ = other.size_;
      cmp_ = std::move(other.cmp_);
      other.root_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Approximate heap bytes held by the tree (node overhead only; callers add
  // deep sizes of keys/values they own).
  int64_t NodeBytes() const {
    return size_ * static_cast<int64_t>(sizeof(Node));
  }

  Iterator begin() const { return Iterator(Minimum(root_)); }
  Iterator end() const { return Iterator(nullptr); }

  // The node with the largest key, or end() when empty.
  Iterator Last() const {
    Node* n = root_;
    if (n == nullptr) return end();
    while (n->right != nullptr) n = n->right;
    return Iterator(n);
  }

  // Inserts (key, value) if the key is absent.  Returns the node's iterator
  // and whether an insertion happened.
  std::pair<Iterator, bool> Insert(Key key, T value) {
    Node* parent = nullptr;
    Node** link = &root_;
    while (*link != nullptr) {
      parent = *link;
      if (cmp_(key, parent->key)) {
        link = &parent->left;
      } else if (cmp_(parent->key, key)) {
        link = &parent->right;
      } else {
        return {Iterator(parent), false};
      }
    }
    Node* node = new Node(std::move(key), std::move(value));
    node->parent = parent;
    *link = node;
    ++size_;
    InsertFixup(node);
    return {Iterator(node), true};
  }

  // Returns the node with `key`, or end().  Accepts any probe type the
  // comparator supports (heterogeneous lookup), so callers can search with a
  // lightweight view instead of materializing a Key.
  template <typename ProbeKey>
  Iterator Find(const ProbeKey& key) const {
    Node* n = root_;
    while (n != nullptr) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        return Iterator(n);
      }
    }
    return end();
  }

  bool Contains(const Key& key) const { return Find(key) != end(); }

  // First node whose key is not less than `key`, or end().
  template <typename ProbeKey>
  Iterator LowerBound(const ProbeKey& key) const {
    Node* n = root_;
    Node* best = nullptr;
    while (n != nullptr) {
      if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        best = n;
        n = n->left;
      }
    }
    return Iterator(best);
  }

  // Erases the node at `it` (must be valid) and returns the successor.
  Iterator Erase(Iterator it) {
    LM_DCHECK(it.node_ != nullptr);
    Node* next = Successor(it.node_);
    EraseNode(it.node_);
    return Iterator(next);
  }

  // Erases `key` if present; returns whether a node was removed.
  bool Erase(const Key& key) {
    Iterator it = Find(key);
    if (it == end()) return false;
    Erase(it);
    return true;
  }

  void Clear() {
    DeleteSubtree(root_);
    root_ = nullptr;
    size_ = 0;
  }

  // Verifies the red-black invariants; used by tests.  Aborts on violation.
  void ValidateInvariants() const {
    LM_CHECK(root_ == nullptr || root_->color == kBlack);
    int64_t count = 0;
    ValidateSubtree(root_, &count);
    LM_CHECK(count == size_);
  }

  // --- Augmentation API (trees instantiated with MinAugment only) ---

  // The node's caller-set augmented value.
  int64_t AugValue(Iterator it) const { return it.node_->aug.self; }

  // Caller-owned per-node scratch storage (MinAugment's Extra).
  auto& AugExtra(Iterator it) { return it.node_->aug.extra; }
  const auto& AugExtra(Iterator it) const { return it.node_->aug.extra; }

  // Sets the node's augmented value and repairs subtree minima on the path
  // to the root; O(log n), O(1) when the value is unchanged.
  void SetAugValue(Iterator it, int64_t value) {
    Node* n = it.node_;
    if (n->aug.self == value) return;
    n->aug.self = value;
    for (; n != nullptr; n = n->parent) {
      const int64_t m = SubtreeMin(n);
      if (n->aug.subtree_min == m) break;
      n->aug.subtree_min = m;
    }
  }

  // First node in key order with AugValue < threshold, or end().
  Iterator FirstAugBelow(int64_t threshold) const {
    return Iterator(FirstAugBelowIn(root_, threshold));
  }

  // First node at or after `it` (in key order) with AugValue < threshold.
  Iterator FirstAugBelowFrom(Iterator it, int64_t threshold) const {
    if (it.node_ == nullptr) return end();
    if (it.node_->aug.self < threshold) return it;
    return NextAugBelow(it, threshold);
  }

  // Next node strictly after `it` (in key order) with AugValue < threshold.
  // O(log n); does not read `it`'s own value, so the caller may have just
  // changed it.
  Iterator NextAugBelow(Iterator it, int64_t threshold) const {
    Node* n = it.node_;
    if (n->right != nullptr && n->right->aug.subtree_min < threshold) {
      return Iterator(FirstAugBelowIn(n->right, threshold));
    }
    Node* p = n->parent;
    while (p != nullptr) {
      if (n == p->left) {
        if (p->aug.self < threshold) return Iterator(p);
        if (p->right != nullptr && p->right->aug.subtree_min < threshold) {
          return Iterator(FirstAugBelowIn(p->right, threshold));
        }
      }
      n = p;
      p = p->parent;
    }
    return end();
  }

  // Recomputes every node's augmented value as fn(key, value) and rebuilds
  // the subtree minima; O(n).  Used when an external event (stream set
  // change, state restore) invalidates all values at once.
  template <typename Fn>
  void RecomputeAug(Fn&& fn) {
    RecomputeAugSubtree(root_, fn);
  }

 private:
  static int64_t SubtreeMin(const Node* n) {
    int64_t m = n->aug.self;
    if (n->left != nullptr && n->left->aug.subtree_min < m) {
      m = n->left->aug.subtree_min;
    }
    if (n->right != nullptr && n->right->aug.subtree_min < m) {
      m = n->right->aug.subtree_min;
    }
    return m;
  }

  static void FixAug(Node* n) {
    if constexpr (Aug::kEnabled) n->aug.subtree_min = SubtreeMin(n);
  }

  static Node* FirstAugBelowIn(Node* n, int64_t threshold) {
    while (n != nullptr && n->aug.subtree_min < threshold) {
      if (n->left != nullptr && n->left->aug.subtree_min < threshold) {
        n = n->left;
        continue;
      }
      if (n->aug.self < threshold) return n;
      n = n->right;
    }
    return nullptr;
  }

  template <typename Fn>
  static void RecomputeAugSubtree(Node* n, Fn& fn) {
    if (n == nullptr) return;
    RecomputeAugSubtree(n->left, fn);
    RecomputeAugSubtree(n->right, fn);
    n->aug.self = fn(static_cast<const Key&>(n->key), n->value);
    n->aug.subtree_min = SubtreeMin(n);
  }

  static Node* Minimum(Node* n) {
    if (n == nullptr) return nullptr;
    while (n->left != nullptr) n = n->left;
    return n;
  }

  static Node* Successor(Node* n) {
    if (n == nullptr) return nullptr;
    if (n->right != nullptr) return Minimum(n->right);
    Node* p = n->parent;
    while (p != nullptr && n == p->right) {
      n = p;
      p = p->parent;
    }
    return p;
  }

  static bool IsRed(const Node* n) { return n != nullptr && n->color == kRed; }

  void RotateLeft(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nullptr) y->left->parent = x;
    y->parent = x->parent;
    ReplaceChild(x, y);
    y->left = x;
    x->parent = y;
    FixAug(x);  // x is now y's child: bottom-up order.
    FixAug(y);
  }

  void RotateRight(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nullptr) y->right->parent = x;
    y->parent = x->parent;
    ReplaceChild(x, y);
    y->right = x;
    x->parent = y;
    FixAug(x);
    FixAug(y);
  }

  // Makes `y` occupy `x`'s position under x's parent (or the root).
  void ReplaceChild(Node* x, Node* y) {
    if (x->parent == nullptr) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
  }

  void InsertFixup(Node* z) {
    while (IsRed(z->parent)) {
      Node* parent = z->parent;
      Node* grandparent = parent->parent;
      if (parent == grandparent->left) {
        Node* uncle = grandparent->right;
        if (IsRed(uncle)) {
          parent->color = kBlack;
          uncle->color = kBlack;
          grandparent->color = kRed;
          z = grandparent;
        } else {
          if (z == parent->right) {
            z = parent;
            RotateLeft(z);
            parent = z->parent;
          }
          parent->color = kBlack;
          grandparent->color = kRed;
          RotateRight(grandparent);
        }
      } else {
        Node* uncle = grandparent->left;
        if (IsRed(uncle)) {
          parent->color = kBlack;
          uncle->color = kBlack;
          grandparent->color = kRed;
          z = grandparent;
        } else {
          if (z == parent->left) {
            z = parent;
            RotateRight(z);
            parent = z->parent;
          }
          parent->color = kBlack;
          grandparent->color = kRed;
          RotateLeft(grandparent);
        }
      }
    }
    root_->color = kBlack;
  }

  // Transplants subtree `v` into `u`'s position (CLRS RB-TRANSPLANT).
  void Transplant(Node* u, Node* v) {
    ReplaceChild(u, v);
    if (v != nullptr) v->parent = u->parent;
  }

  void EraseNode(Node* z) {
    Node* y = z;
    Color y_original = y->color;
    Node* x = nullptr;
    Node* x_parent = nullptr;
    if (z->left == nullptr) {
      x = z->right;
      x_parent = z->parent;
      Transplant(z, z->right);
    } else if (z->right == nullptr) {
      x = z->left;
      x_parent = z->parent;
      Transplant(z, z->left);
    } else {
      y = Minimum(z->right);
      y_original = y->color;
      x = y->right;
      if (y->parent == z) {
        x_parent = y;
      } else {
        x_parent = y->parent;
        Transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      Transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    delete z;
    --size_;
    if (y_original == kBlack) EraseFixup(x, x_parent);
    if constexpr (Aug::kEnabled) {
      // Every node whose subtree set changed (transplants above, plus any
      // EraseFixup rotation) lies on the x_parent-to-root chain: rotations
      // only move chain ancestors onto the chain, never off it.  One
      // bottom-up pass repairs all minima.
      for (Node* n = x_parent; n != nullptr; n = n->parent) FixAug(n);
    }
  }

  void EraseFixup(Node* x, Node* parent) {
    while (x != root_ && !IsRed(x)) {
      if (x == parent->left) {
        Node* sibling = parent->right;
        if (IsRed(sibling)) {
          sibling->color = kBlack;
          parent->color = kRed;
          RotateLeft(parent);
          sibling = parent->right;
        }
        if (!IsRed(sibling->left) && !IsRed(sibling->right)) {
          sibling->color = kRed;
          x = parent;
          parent = x->parent;
        } else {
          if (!IsRed(sibling->right)) {
            if (sibling->left != nullptr) sibling->left->color = kBlack;
            sibling->color = kRed;
            RotateRight(sibling);
            sibling = parent->right;
          }
          sibling->color = parent->color;
          parent->color = kBlack;
          if (sibling->right != nullptr) sibling->right->color = kBlack;
          RotateLeft(parent);
          x = root_;
          parent = nullptr;
        }
      } else {
        Node* sibling = parent->left;
        if (IsRed(sibling)) {
          sibling->color = kBlack;
          parent->color = kRed;
          RotateRight(parent);
          sibling = parent->left;
        }
        if (!IsRed(sibling->left) && !IsRed(sibling->right)) {
          sibling->color = kRed;
          x = parent;
          parent = x->parent;
        } else {
          if (!IsRed(sibling->left)) {
            if (sibling->right != nullptr) sibling->right->color = kBlack;
            sibling->color = kRed;
            RotateLeft(sibling);
            sibling = parent->left;
          }
          sibling->color = parent->color;
          parent->color = kBlack;
          if (sibling->left != nullptr) sibling->left->color = kBlack;
          RotateRight(parent);
          x = root_;
          parent = nullptr;
        }
      }
    }
    if (x != nullptr) x->color = kBlack;
  }

  void DeleteSubtree(Node* n) {
    while (n != nullptr) {
      DeleteSubtree(n->right);
      Node* left = n->left;
      delete n;
      n = left;
    }
  }

  // Returns black-height; checks ordering and no-red-red.
  int ValidateSubtree(const Node* n, int64_t* count) const {
    if (n == nullptr) return 1;
    ++*count;
    if (n->left != nullptr) {
      LM_CHECK(n->left->parent == n);
      LM_CHECK(cmp_(n->left->key, n->key));
    }
    if (n->right != nullptr) {
      LM_CHECK(n->right->parent == n);
      LM_CHECK(cmp_(n->key, n->right->key));
    }
    if (IsRed(n)) {
      LM_CHECK(!IsRed(n->left));
      LM_CHECK(!IsRed(n->right));
    }
    if constexpr (Aug::kEnabled) {
      LM_CHECK(n->aug.subtree_min == SubtreeMin(n));
    }
    const int hl = ValidateSubtree(n->left, count);
    const int hr = ValidateSubtree(n->right, count);
    LM_CHECK(hl == hr);
    return hl + (n->color == kBlack ? 1 : 0);
  }

  Node* root_ = nullptr;
  int64_t size_ = 0;
  Compare cmp_;
};

}  // namespace lmerge

#endif  // LMERGE_CONTAINER_RBTREE_H_
