#include "replica/cut_certificate.h"

namespace lmerge::replica {

namespace {

// Encoded size of one CutInputState: u32 + u8 + i64 + i64.
constexpr size_t kInputStateBytes = 21;

bool ValidVariant(uint8_t v) {
  return v <= static_cast<uint8_t>(MergeVariant::kCounting);
}

}  // namespace

void EncodeCutCertificate(const CutCertificate& cert, Encoder* encoder) {
  encoder->WriteU8(static_cast<uint8_t>(cert.variant));
  encoder->WriteU8(static_cast<uint8_t>(cert.policy.adjust_policy));
  encoder->WriteU8(static_cast<uint8_t>(cert.policy.insert_policy));
  encoder->WriteDouble(cert.policy.insert_fraction);
  encoder->WriteI64(cert.policy.stable_lag);
  encoder->WriteU8(cert.policy.r4_exact_match ? 1 : 0);
  encoder->WriteI64(cert.output_stable);
  encoder->WriteI64(cert.elements_sent_at_cut);
  encoder->WriteU32(static_cast<uint32_t>(cert.inputs.size()));
  for (const CutInputState& in : cert.inputs) {
    encoder->WriteU32(static_cast<uint32_t>(in.stream_id));
    encoder->WriteU8(in.active ? 1 : 0);
    encoder->WriteI64(in.stable_point);
    encoder->WriteI64(in.elements_in);
  }
  // Optional trailing section: only partitioned cuts write it, so
  // single-shard certificates keep the original byte layout.
  if (!cert.shard_stables.empty()) {
    encoder->WriteU32(static_cast<uint32_t>(cert.shard_stables.size()));
    for (const Timestamp t : cert.shard_stables) encoder->WriteI64(t);
  }
}

Status DecodeCutCertificate(Decoder* decoder, CutCertificate* cert) {
  *cert = CutCertificate();
  uint8_t variant = 0;
  Status status = decoder->ReadU8(&variant);
  if (!status.ok()) return status;
  if (!ValidVariant(variant)) {
    return Status::InvalidArgument("unknown merge variant " +
                                   std::to_string(variant));
  }
  cert->variant = static_cast<MergeVariant>(variant);
  uint8_t adjust = 0;
  if (!(status = decoder->ReadU8(&adjust)).ok()) return status;
  if (adjust > static_cast<uint8_t>(AdjustPolicy::kEager)) {
    return Status::InvalidArgument("unknown adjust policy " +
                                   std::to_string(adjust));
  }
  cert->policy.adjust_policy = static_cast<AdjustPolicy>(adjust);
  uint8_t insert = 0;
  if (!(status = decoder->ReadU8(&insert)).ok()) return status;
  if (insert > static_cast<uint8_t>(InsertPolicy::kFractionThreshold)) {
    return Status::InvalidArgument("unknown insert policy " +
                                   std::to_string(insert));
  }
  cert->policy.insert_policy = static_cast<InsertPolicy>(insert);
  if (!(status = decoder->ReadDouble(&cert->policy.insert_fraction)).ok()) {
    return status;
  }
  if (!(status = decoder->ReadI64(&cert->policy.stable_lag)).ok()) {
    return status;
  }
  uint8_t exact = 0;
  if (!(status = decoder->ReadU8(&exact)).ok()) return status;
  cert->policy.r4_exact_match = exact != 0;
  if (!(status = decoder->ReadI64(&cert->output_stable)).ok()) return status;
  if (!(status = decoder->ReadI64(&cert->elements_sent_at_cut)).ok()) {
    return status;
  }
  if (cert->elements_sent_at_cut < 0) {
    return Status::InvalidArgument("negative elements_sent_at_cut");
  }
  uint32_t count = 0;
  if (!(status = decoder->ReadU32(&count)).ok()) return status;
  if (count > decoder->remaining() / kInputStateBytes + 1) {
    return Status::InvalidArgument("cut certificate input count too large");
  }
  cert->inputs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CutInputState in;
    uint32_t stream = 0;
    if (!(status = decoder->ReadU32(&stream)).ok()) return status;
    in.stream_id = static_cast<int32_t>(stream);
    uint8_t active = 0;
    if (!(status = decoder->ReadU8(&active)).ok()) return status;
    in.active = active != 0;
    if (!(status = decoder->ReadI64(&in.stable_point)).ok()) return status;
    if (!(status = decoder->ReadI64(&in.elements_in)).ok()) return status;
    cert->inputs.push_back(in);
  }
  // Pre-partitioned certificates end here; a partitioned cut appends its
  // per-shard stable frontier.  The certificate is always the last section
  // of its container (CUT_CERT frame, checkpoint embed), so remaining bytes
  // unambiguously belong to it.
  if (!decoder->AtEnd()) {
    uint32_t shard_count = 0;
    if (!(status = decoder->ReadU32(&shard_count)).ok()) return status;
    if (shard_count == 0 ||
        shard_count > decoder->remaining() / sizeof(int64_t) + 1) {
      return Status::InvalidArgument("cut certificate shard count invalid");
    }
    cert->shard_stables.reserve(shard_count);
    for (uint32_t i = 0; i < shard_count; ++i) {
      Timestamp t = kMinTimestamp;
      if (!(status = decoder->ReadI64(&t)).ok()) return status;
      cert->shard_stables.push_back(t);
    }
  }
  return Status::Ok();
}

std::string SerializeCutCertificate(const CutCertificate& cert) {
  Encoder encoder;
  EncodeCutCertificate(cert, &encoder);
  return encoder.TakeBytes();
}

Status ParseCutCertificate(const std::string& bytes, CutCertificate* cert) {
  Decoder decoder(bytes);
  Status status = DecodeCutCertificate(&decoder, cert);
  if (!status.ok()) return status;
  if (!decoder.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after cut certificate");
  }
  return Status::Ok();
}

}  // namespace lmerge::replica
