#include "replica/standby.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <utility>

#include "net/loopback.h"
#include "properties/properties.h"

namespace lmerge::replica {

StandbyReplica::StandbyReplica(StandbyOptions options)
    : options_(std::move(options)), server_(options_.server) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  feed_elements_metric_ = registry.GetCounter("replica.feed.elements");
  replay_elements_metric_ = registry.GetCounter("replica.replay.elements");
  dedup_elements_metric_ = registry.GetCounter("replica.dedup.elements");
  checkpoint_rx_bytes_metric_ =
      registry.GetCounter("replica.checkpoint.rx.bytes");
  checkpoint_rx_chunks_metric_ =
      registry.GetCounter("replica.checkpoint.rx.chunks");
  replay_lag_metric_ = registry.GetGauge("replica.replay.lag");
}

StandbyReplica::~StandbyReplica() {
  if (feed_session_id_ >= 0) server_.OnDisconnect(feed_session_id_);
  if (primary_ != nullptr) primary_->Close();
}

Status StandbyReplica::Connect(std::unique_ptr<net::Connection> primary) {
  if (connected_) return Status::FailedPrecondition("already connected");
  if (primary == nullptr) {
    return Status::InvalidArgument("null primary connection");
  }
  primary_ = std::move(primary);
  net::HelloMessage hello;
  hello.role = net::PeerRole::kStandby;
  hello.peer_name = options_.name;
  Status status = primary_->Send(net::EncodeHelloFrame(hello));
  if (!status.ok()) return status;
  net::Frame frame;
  status = net::ReceiveFrame(primary_.get(), &assembler_, &frame);
  if (!status.ok()) return status;
  if (frame.type == net::FrameType::kBye) {
    // Pre-v4 primaries reject the standby role with a BYE; surface their
    // reason instead of a generic decode error.
    net::ByeMessage bye;
    (void)net::DecodeBye(frame.payload, &bye);
    return Status::FailedPrecondition("primary rejected standby session: " +
                                      bye.reason);
  }
  if (frame.type != net::FrameType::kWelcome) {
    return Status::InvalidArgument(std::string("expected WELCOME, got ") +
                                   net::FrameTypeName(frame.type));
  }
  net::WelcomeMessage welcome;
  status = net::DecodeWelcome(frame.payload, &welcome);
  if (!status.ok()) return status;
  if (welcome.version < net::kReplicationVersion ||
      welcome.version > net::kProtocolVersion) {
    return Status::InvalidArgument(
        "primary negotiated v" + std::to_string(welcome.version) +
        "; standby needs v" + std::to_string(net::kReplicationVersion));
  }
  dict_ = std::make_unique<PayloadDictDecoder>();
  version_ = welcome.version;
  connected_ = true;
  Log("connected to primary (v" + std::to_string(welcome.version) + ")");
  return Status::Ok();
}

Status StandbyReplica::DecodeFeedFrame(const net::Frame& frame,
                                       ElementSequence* out, bool* bye,
                                       std::string* bye_reason) {
  *bye = false;
  switch (frame.type) {
    case net::FrameType::kElement: {
      StreamElement element;
      const Status status =
          net::DecodeElementPayload(frame.payload, &element);
      if (!status.ok()) return status;
      out->push_back(element);
      return Status::Ok();
    }
    case net::FrameType::kElements: {
      // The payload decoders replace their output; decode into a scratch
      // and append so callers can accumulate across frames.
      ElementSequence decoded;
      int64_t origin_us = 0;
      const Status status =
          version_ >= net::kLatencyVersion
              ? net::DecodeElementsPayload(frame.payload, &decoded,
                                           &origin_us)
              : net::DecodeElementsPayload(frame.payload, &decoded);
      if (!status.ok()) return status;
      out->insert(out->end(), decoded.begin(), decoded.end());
      return Status::Ok();
    }
    case net::FrameType::kPayloadDef: {
      net::PayloadDefMessage def;
      const Status status =
          net::DecodePayloadDefPayload(frame.payload, &def);
      if (!status.ok()) return status;
      return dict_->Define(def.id, std::move(def.payload));
    }
    case net::FrameType::kElementsDict: {
      ElementSequence decoded;
      int64_t origin_us = 0;
      const Status status =
          version_ >= net::kLatencyVersion
              ? net::DecodeElementsDictPayload(frame.payload, *dict_,
                                               &decoded, &origin_us)
              : net::DecodeElementsDictPayload(frame.payload, *dict_,
                                               &decoded);
      if (!status.ok()) return status;
      out->insert(out->end(), decoded.begin(), decoded.end());
      return Status::Ok();
    }
    case net::FrameType::kFeedback:
      // Subscribers do not act on feedback; tolerate and drop.
      return Status::Ok();
    case net::FrameType::kBye: {
      net::ByeMessage message;
      (void)net::DecodeBye(frame.payload, &message);
      *bye = true;
      *bye_reason = message.reason;
      return Status::Ok();
    }
    default:
      return Status::InvalidArgument(
          std::string("unexpected frame from primary: ") +
          net::FrameTypeName(frame.type));
  }
}

Status StandbyReplica::Jumpstart() {
  if (!connected_) return Status::FailedPrecondition("not connected");
  if (jumpstarted_) return Status::FailedPrecondition("already jumpstarted");
  Status status = primary_->Send(net::EncodeCheckpointRequestFrame());
  if (!status.ok()) return status;

  // Receive until the snapshot transfer is complete, buffering the live
  // output elements that interleave with it.  Every pre-cut element
  // precedes the CUT_CERT on this connection, so after the loop `pending`
  // holds at least `elements_sent_at_cut` elements and the dedup horizon
  // is a plain prefix length.
  ElementSequence pending;
  net::CutCertMessage cut;
  bool have_cert = false;
  std::string blob;
  uint32_t chunks_received = 0;
  while (true) {
    net::Frame frame;
    status = net::ReceiveFrame(primary_.get(), &assembler_, &frame);
    if (!status.ok()) {
      if (status.code() == StatusCode::kFailedPrecondition) {
        return Status::FailedPrecondition(
            "primary closed the connection during jumpstart");
      }
      return status;
    }
    if (frame.type == net::FrameType::kCutCert) {
      if (have_cert) {
        return Status::InvalidArgument("duplicate CUT_CERT from primary");
      }
      status = net::DecodeCutCert(frame.payload, &cut);
      if (!status.ok()) return status;
      have_cert = true;
      Log("cut certificate: " +
          std::string(cut.has_state ? "snapshot of " : "no state, ") +
          std::to_string(cut.checkpoint_bytes) + " bytes in " +
          std::to_string(cut.chunk_count) + " chunks, dedup horizon " +
          std::to_string(cut.cert.elements_sent_at_cut));
      if (!cut.has_state || cut.chunk_count == 0) break;
      blob.reserve(cut.checkpoint_bytes);
      continue;
    }
    if (frame.type == net::FrameType::kCheckpointChunk) {
      if (!have_cert || !cut.has_state) {
        return Status::InvalidArgument(
            "CHECKPOINT_CHUNK before a CUT_CERT announcing state");
      }
      net::CheckpointChunkMessage chunk;
      status = net::DecodeCheckpointChunk(frame.payload, &chunk);
      if (!status.ok()) return status;
      if (chunk.index != chunks_received) {
        return Status::InvalidArgument(
            "checkpoint chunk " + std::to_string(chunk.index) +
            " out of order (expected " + std::to_string(chunks_received) +
            ")");
      }
      blob.append(chunk.bytes);
      ++chunks_received;
      checkpoint_rx_bytes_metric_->Add(
          static_cast<int64_t>(chunk.bytes.size()));
      checkpoint_rx_chunks_metric_->Increment();
      if (chunks_received == cut.chunk_count) {
        if (blob.size() != cut.checkpoint_bytes) {
          return Status::InvalidArgument(
              "checkpoint transfer size mismatch: announced " +
              std::to_string(cut.checkpoint_bytes) + " bytes, received " +
              std::to_string(blob.size()));
        }
        break;
      }
      continue;
    }
    bool bye = false;
    std::string bye_reason;
    const size_t before = pending.size();
    status = DecodeFeedFrame(frame, &pending, &bye, &bye_reason);
    if (!status.ok()) return status;
    if (bye) {
      return Status::FailedPrecondition("primary said BYE during jumpstart: " +
                                        bye_reason);
    }
    BumpFeed(static_cast<int64_t>(pending.size() - before),
             static_cast<int64_t>(pending.size()));
  }

  int64_t skip = 0;
  if (cut.has_state) {
    status = server_.AdoptCheckpoint(blob, cut.cert);
    if (!status.ok()) return status;
    skip = cut.cert.elements_sent_at_cut;
    if (skip > static_cast<int64_t>(pending.size())) {
      return Status::InvalidArgument(
          "cut certificate dedup horizon " + std::to_string(skip) +
          " exceeds the " + std::to_string(pending.size()) +
          " elements received before it");
    }
    checkpoint_blob_ = std::move(blob);
    MutexLock lock(mutex_);
    has_state_ = true;
    cut_ = cut.cert;
  }

  status = AttachFeed(cut.has_state ? cut.cert.output_stable : kMinTimestamp);
  if (!status.ok()) return status;

  // Replay the buffered tail: elements past the dedup horizon are exactly
  // the output the primary produced after the cut.
  if (skip > 0) {
    pre_cut_.assign(pending.begin(),
                    pending.begin() + static_cast<ptrdiff_t>(skip));
    MutexLock lock(mutex_);
    deduped_ += skip;
    dedup_elements_metric_->Add(skip);
  }
  ElementSequence tail(pending.begin() + static_cast<ptrdiff_t>(skip),
                       pending.end());
  status = ForwardToFeed(tail);
  if (!status.ok()) return status;
  replay_lag_metric_->Set(0);
  jumpstarted_ = true;
  Log("jumpstarted: deduped " + std::to_string(skip) + ", replayed " +
      std::to_string(tail.size()) + " buffered elements");
  return Status::Ok();
}

Status StandbyReplica::PumpLive() {
  if (!jumpstarted_) return Status::FailedPrecondition("not jumpstarted");
  while (true) {
    net::Frame frame;
    Status status = net::ReceiveFrame(primary_.get(), &assembler_, &frame);
    if (!status.ok()) {
      if (status.code() == StatusCode::kFailedPrecondition) {
        // EOF without BYE: the primary is gone.  That is the failover
        // trigger this class exists for, not an error.
        MutexLock lock(mutex_);
        end_reason_ = "eof";
        return Status::Ok();
      }
      return status;
    }
    ElementSequence elements;
    bool bye = false;
    std::string bye_reason;
    status = DecodeFeedFrame(frame, &elements, &bye, &bye_reason);
    if (!status.ok()) return status;
    if (bye) {
      MutexLock lock(mutex_);
      end_reason_ = bye_reason.empty() ? "bye" : bye_reason;
      return Status::Ok();
    }
    if (elements.empty()) continue;
    BumpFeed(static_cast<int64_t>(elements.size()), 0);
    status = ForwardToFeed(elements);
    if (!status.ok()) return status;
  }
}

Status StandbyReplica::Promote(const std::string& reason) {
  if (!jumpstarted_) return Status::FailedPrecondition("not jumpstarted");
  if (promoted_) return Status::FailedPrecondition("already promoted");
  if (primary_ != nullptr) {
    primary_->Close();
    primary_.reset();
  }
  // Orderly leave for the feed stream (Sec. V-C): the restored algorithm
  // detaches the feed input and keeps merging the directly-connected
  // publishers.
  net::ByeMessage bye;
  bye.reason = reason;
  Status status = server_.OnBytes(feed_session_id_, net::EncodeByeFrame(bye));
  server_.OnDisconnect(feed_session_id_);
  feed_session_id_ = -1;
  std::string drained;
  (void)feed_client_end_->TryReceive(&drained);
  if (!status.ok()) return status;
  server_.Flush();
  promoted_ = true;
  Log("promoted: " + reason);
  return Status::Ok();
}

Status StandbyReplica::AttachFeed(Timestamp join_time) {
  auto ends = net::CreateLoopbackPair(options_.name + ":feed:server",
                                      options_.name + ":feed:client");
  feed_server_end_ = std::move(ends.first);
  feed_client_end_ = std::move(ends.second);
  feed_session_id_ = server_.OnConnect(feed_server_end_.get());
  net::HelloMessage hello;
  hello.role = net::PeerRole::kPublisher;
  // The merged output claims no compile-time properties; when no snapshot
  // was adopted the factory falls back to the most general variant, and
  // when one was adopted the variant is already pinned by the certificate.
  hello.properties = StreamProperties::None();
  hello.join_time = join_time;
  hello.peer_name = options_.name + ":feed";
  Status status =
      server_.OnBytes(feed_session_id_, net::EncodeHelloFrame(hello));
  if (!status.ok()) return status;
  std::string drained;  // the WELCOME; keeps the loopback queue empty
  return feed_client_end_->TryReceive(&drained);
}

Status StandbyReplica::ForwardToFeed(const ElementSequence& elements) {
  size_t offset = 0;
  while (offset < elements.size()) {
    const size_t take = std::min(kReplayBatch, elements.size() - offset);
    ElementSequence batch(
        elements.begin() + static_cast<ptrdiff_t>(offset),
        elements.begin() + static_cast<ptrdiff_t>(offset + take));
    // Replayed elements lost their original ingest moment; an unknown (0)
    // origin keeps them out of the latency histograms instead of charging
    // them the failover gap.
    const Status status = server_.OnBytes(
        feed_session_id_, net::EncodeElementsFrame(batch, /*origin_us=*/0));
    if (!status.ok()) return status;
    offset += take;
    {
      MutexLock lock(mutex_);
      replayed_ += static_cast<int64_t>(take);
    }
    replay_elements_metric_->Add(static_cast<int64_t>(take));
  }
  // Drain server->feed traffic (FEEDBACK) so the loopback queue is bounded.
  std::string drained;
  return feed_client_end_->TryReceive(&drained);
}

void StandbyReplica::BumpFeed(int64_t decoded, int64_t lag) {
  {
    MutexLock lock(mutex_);
    feed_elements_ += decoded;
  }
  feed_elements_metric_->Add(decoded);
  replay_lag_metric_->Set(lag);
  feed_cv_.NotifyAll();
}

bool StandbyReplica::has_state() const {
  MutexLock lock(mutex_);
  return has_state_;
}

CutCertificate StandbyReplica::cut() const {
  MutexLock lock(mutex_);
  return cut_;
}

int64_t StandbyReplica::feed_elements() const {
  MutexLock lock(mutex_);
  return feed_elements_;
}

int64_t StandbyReplica::deduped_elements() const {
  MutexLock lock(mutex_);
  return deduped_;
}

int64_t StandbyReplica::replayed_elements() const {
  MutexLock lock(mutex_);
  return replayed_;
}

std::string StandbyReplica::end_reason() const {
  MutexLock lock(mutex_);
  return end_reason_;
}

bool StandbyReplica::WaitForFeed(int64_t n,
                                 std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(mutex_);
  while (feed_elements_ < n) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    feed_cv_.WaitFor(lock, deadline - now);
  }
  return true;
}

void StandbyReplica::Log(const std::string& message) const {
  if (!options_.verbose) return;
  std::fprintf(stderr, "[standby %s] %s\n", options_.name.c_str(),
               message.c_str());
}

}  // namespace lmerge::replica
