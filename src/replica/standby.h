// StandbyReplica: a hot standby that shadows a running lmerge service and
// can take over as the merge point when the primary dies
// (docs/REPLICATION.md).
//
// The key property it leans on is the paper's Sec. II-4/5 result: the
// merged output of an LMerge operator is itself a valid physical
// presentation of the logical stream.  So the standby does not need the
// primary's N input replicas — it runs its own MergeServer and feeds the
// *primary's merged output* into it as a single publisher stream (the
// "feed").  Publishers that later connect to the standby join through the
// ordinary Sec. V-B protocol, and when the feed ends (primary death), the
// standby's server keeps producing from the surviving inputs: promotion is
// just the leaving-stream protocol applied to the feed.
//
// Jumpstart avoids replaying the primary's whole history.  The standby
// joins as a v4 `standby` subscriber and sends CHECKPOINT_REQUEST; the
// primary answers with a CUT_CERT (cut certificate: variant, policy,
// output stable point, per-input frontiers, and the number of output
// elements already sent on this very subscription) followed by the
// checkpoint blob in CHECKPOINT_CHUNK frames, with live output elements
// interleaving freely.  Because the certificate and every pre-cut element
// travel in order on one connection, the dedup rule is purely count-based:
// the first `elements_sent_at_cut` elements received on the subscription
// are already inside the restored state and are dropped; everything after
// is replayed into the local merge.  MergeServer::AdoptCheckpoint restores
// the blob and arranges for the feed stream to adopt the snapshot's output
// views (MergeAlgorithm::AdoptOutputView), so the restored index treats
// the feed as having already delivered everything the snapshot contains —
// no spurious retractions, no duplicate inserts.
//
// Threading: Connect / Jumpstart / PumpLive / Promote must be called in
// order from one driver thread.  The counters and the cut certificate are
// published under an annotated Mutex so other threads (stats loops, tests)
// may call the const getters and WaitForFeed concurrently.

#ifndef LMERGE_REPLICA_STANDBY_H_
#define LMERGE_REPLICA_STANDBY_H_

#include <chrono>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "replica/cut_certificate.h"
#include "stream/element.h"

namespace lmerge::replica {

struct StandbyOptions {
  // Options for the local shadow MergeServer (variant/policy are overridden
  // by the cut certificate when a checkpoint is adopted).
  net::MergeServerOptions server;
  // Peer name used on the subscription to the primary and (suffixed with
  // ":feed") on the internal feed publisher session.
  std::string name = "standby";
  // Log replication milestones to stderr.
  bool verbose = false;
};

class StandbyReplica {
 public:
  explicit StandbyReplica(StandbyOptions options = StandbyOptions());
  ~StandbyReplica();

  StandbyReplica(const StandbyReplica&) = delete;
  StandbyReplica& operator=(const StandbyReplica&) = delete;

  // Sends HELLO (role=standby, v4) on `primary` and blocks for WELCOME.
  // Fails against pre-v4 primaries, which cannot serve checkpoints.
  Status Connect(std::unique_ptr<net::Connection> primary);

  // Requests the primary's checkpoint, buffers live output that interleaves
  // with the transfer, restores the blob into the local server, attaches
  // the feed stream at the certified stable point, and replays the
  // buffered tail past the dedup horizon.  When the primary has no
  // checkpointable state yet (CUT_CERT with has_state=false) the standby
  // simply starts the feed from scratch — same code path, empty snapshot.
  Status Jumpstart();

  // Forwards the primary's live output into the local merge until the
  // primary goes away.  EOF and BYE are clean ends (that is the failover
  // trigger, not an error); the reason is recorded in end_reason().
  Status PumpLive();

  // Ends the feed stream (orderly BYE + detach), making the local server
  // the new merge point.  Publishers connecting to server() from here on
  // continue the logical stream.
  Status Promote(const std::string& reason = "promoted");

  // The shadow server; wire its listener / sinks exactly like a primary's.
  net::MergeServer& server() { return server_; }

  // True once Jumpstart adopted a checkpoint (vs. started from scratch).
  bool has_state() const;
  // The certified cut (valid once Jumpstart returned with has_state()).
  CutCertificate cut() const;
  // Output elements decoded from the primary's subscription so far.
  int64_t feed_elements() const;
  // Of those, dropped as pre-cut duplicates / replayed into the merge.
  int64_t deduped_elements() const;
  int64_t replayed_elements() const;
  // Why PumpLive returned ("eof", or the primary's BYE reason).
  std::string end_reason() const;

  // The deduped pre-cut prefix of the feed: the primary's output up to the
  // certified cut, which the restored state already covers.  Concatenated
  // with the local server's output it is the full physical stream — what
  // end-to-end equivalence checks reconstitute.  Valid after Jumpstart;
  // driver thread only.
  const ElementSequence& pre_cut() const { return pre_cut_; }

  // The checkpoint blob received during Jumpstart, verbatim (empty when the
  // primary had no state).  Loadable by LoadCheckpoint and inspectable with
  // `lmerge_inspect --checkpoint`; valid after Jumpstart, driver thread
  // only.
  const std::string& checkpoint_blob() const { return checkpoint_blob_; }

  // Blocks until feed_elements() >= n or `timeout` elapses; returns whether
  // the target was reached.  For tests coordinating with a pump thread.
  bool WaitForFeed(int64_t n, std::chrono::milliseconds timeout);

 private:
  // Decodes any element-bearing frame into `out`; non-element frames
  // (FEEDBACK) are absorbed.  Sets *bye when the frame was a BYE.
  Status DecodeFeedFrame(const net::Frame& frame, ElementSequence* out,
                         bool* bye, std::string* bye_reason);
  // Opens the internal loopback publisher session carrying the feed.
  Status AttachFeed(Timestamp join_time);
  // Sends `elements` into the feed session as ELEMENTS frames of at most
  // kReplayBatch elements each, then drains the feed's response queue.
  Status ForwardToFeed(const ElementSequence& elements);
  void BumpFeed(int64_t decoded, int64_t lag);
  void Log(const std::string& message) const;

  static constexpr size_t kReplayBatch = 1024;

  StandbyOptions options_;
  net::MergeServer server_;

  // Subscription to the primary (driver thread only).
  std::unique_ptr<net::Connection> primary_;
  net::FrameAssembler assembler_;
  std::unique_ptr<PayloadDictDecoder> dict_;
  bool connected_ = false;
  // Version negotiated with the primary; v5 feed frames carry a trailing
  // origin stamp the standby must strip (it replays, it does not measure).
  uint32_t version_ = net::kMinProtocolVersion;
  bool jumpstarted_ = false;
  bool promoted_ = false;
  ElementSequence pre_cut_;
  std::string checkpoint_blob_;

  // Internal feed publisher session.  The server writes its responses
  // (WELCOME, FEEDBACK) to feed_server_end_; we read them from
  // feed_client_end_ and push frames in via MergeServer::OnBytes.
  std::unique_ptr<net::Connection> feed_server_end_;
  std::unique_ptr<net::Connection> feed_client_end_;
  int feed_session_id_ = -1;

  // Cross-thread observable state (getters + WaitForFeed).
  mutable Mutex mutex_;
  CondVar feed_cv_;
  bool has_state_ LM_GUARDED_BY(mutex_) = false;
  CutCertificate cut_ LM_GUARDED_BY(mutex_);
  int64_t feed_elements_ LM_GUARDED_BY(mutex_) = 0;
  int64_t deduped_ LM_GUARDED_BY(mutex_) = 0;
  int64_t replayed_ LM_GUARDED_BY(mutex_) = 0;
  std::string end_reason_ LM_GUARDED_BY(mutex_);

  // Cached instrument handles (docs/OBSERVABILITY.md).
  obs::Counter* feed_elements_metric_;
  obs::Counter* replay_elements_metric_;
  obs::Counter* dedup_elements_metric_;
  obs::Counter* checkpoint_rx_bytes_metric_;
  obs::Counter* checkpoint_rx_chunks_metric_;
  obs::Gauge* replay_lag_metric_;
};

}  // namespace lmerge::replica

#endif  // LMERGE_REPLICA_STANDBY_H_
