// CutCertificate: the descriptor of the virtual cut at which a standby's
// checkpoint was taken (docs/REPLICATION.md).
//
// A primary serving a standby snapshots its merge state on the merge thread,
// between two elements — a consistent cut.  The certificate pins that cut:
// which algorithm variant and policy the state belongs to, the output stable
// point at the cut, how many output elements the requesting standby's
// subscription had been sent when the cut was taken (its dedup horizon for
// replaying the live feed), and each input's delivered frontier.  Because
// the merged output is itself a valid physical presentation of the same TDB
// (Sec. II-4/5), the standby can treat the primary's post-cut output as one
// more input stream and continue the merge from the restored state.
//
// The certificate is embedded in checkpoint v2 blobs (flags bit 0) and sent
// on the wire inside the CUT_CERT frame; both use the same encoding.

#ifndef LMERGE_REPLICA_CUT_CERTIFICATE_H_
#define LMERGE_REPLICA_CUT_CERTIFICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "core/factory.h"
#include "core/merge_policy.h"

namespace lmerge::replica {

// One input stream's position at the cut, as the primary delivered it.
struct CutInputState {
  int32_t stream_id = 0;
  bool active = false;
  // Highest stable point the input had announced (kMinTimestamp if none).
  Timestamp stable_point = kMinTimestamp;
  // Elements the merge had consumed from this input (inserts + adjusts +
  // stables).
  int64_t elements_in = 0;
};

struct CutCertificate {
  // What the checkpointed state is: the standby must reconstruct the same
  // algorithm with the same policy or the state bytes are meaningless.
  MergeVariant variant = MergeVariant::kLMR4;
  MergePolicy policy;
  // Output stable point at the cut == restored algorithm's max_stable().
  Timestamp output_stable = kMinTimestamp;
  // Output elements already sent to the requesting standby's subscription
  // when the cut was taken.  The standby skips exactly this many elements
  // of its live feed: everything before is covered by the state, everything
  // after is the post-cut continuation.
  int64_t elements_sent_at_cut = 0;
  std::vector<CutInputState> inputs;
  // Partitioned merge only (engine/partitioned.h): each shard algorithm's
  // max_stable() at the barrier, in shard order.  output_stable is their
  // minimum.  Empty for a single-threaded cut — and an empty vector is not
  // encoded at all, so single-shard certificates stay byte-identical to the
  // pre-partitioned format (the decoder reads the section only when bytes
  // remain).
  std::vector<Timestamp> shard_stables;
};

void EncodeCutCertificate(const CutCertificate& cert, Encoder* encoder);
Status DecodeCutCertificate(Decoder* decoder, CutCertificate* cert);

// Whole-buffer forms (the checkpoint's embedded section and the CUT_CERT
// frame body both hold exactly one certificate).
std::string SerializeCutCertificate(const CutCertificate& cert);
Status ParseCutCertificate(const std::string& bytes, CutCertificate* cert);

}  // namespace lmerge::replica

#endif  // LMERGE_REPLICA_CUT_CERTIFICATE_H_
