// lmerge_stats — poll a live lmerge_served daemon over the v3 monitor role
// and render its merge stats: per-input element counts, contribution to the
// merged output, stable-point lag behind the leading replica, and
// between-poll throughput.
//
//   lmerge_stats <host> <port> [--interval=SEC] [--count=N] [--json]
//                [--name=X]
//
// One STATS_REQUEST/STATS_RESPONSE round trip per tick (docs/SERVICE.md).
// --count=N stops after N polls (default 0 = until the server goes away);
// --json emits one JSON object per tick on stdout — the per-input table
// plus the server's full metrics-registry snapshot — instead of the text
// table, for scripting (scripts/demo_net.sh asserts on it).
//
// Rates are computed from the *server's* snapshot capture timestamps
// (snapshot.captured_mono_us, v5 servers): the divisor is the time between
// the two snapshots being captured, not between this tool observing them,
// so a stalled monitor link cannot flatter or inflate el/s.  Against a v4
// server the tool falls back to its own clock.  Each tick also renders the
// server's latency.* stage histograms as p50/p99 columns.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "net/tcp.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lmerge_stats <host> <port> [--interval=SEC] "
               "[--count=N] [--json] [--name=X]\n");
  return 2;
}

// Timestamps are kMinTimestamp before any stable element arrived.
std::string StableString(Timestamp t) {
  return t == kMinTimestamp ? std::string("-") : TimestampToString(t);
}

// The wire carries kUnknownAlgorithmCase (0xff) before the first publisher
// instantiates an algorithm; that value is outside the enum's range.
const char* AlgorithmName(uint8_t algorithm_case) {
  if (algorithm_case > static_cast<uint8_t>(AlgorithmCase::kR4)) {
    return "none";
  }
  return AlgorithmCaseName(static_cast<AlgorithmCase>(algorithm_case));
}

// One latency.* histogram as a table line; silent when it has no samples.
void PrintLatencyRow(const net::StatsResponseMessage& stats,
                     const char* name, const char* label) {
  const obs::MetricValue* metric = stats.metrics.Find(name);
  if (metric == nullptr || metric->histogram.count == 0) return;
  const obs::HistogramSnapshot& h = metric->histogram;
  std::printf("  %-18s %8lld samples  p50 %8lld  p99 %8lld  max %8lld us\n",
              label, static_cast<long long>(h.count),
              static_cast<long long>(h.Percentile(50)),
              static_cast<long long>(h.Percentile(99)),
              static_cast<long long>(h.max));
}

void PrintTable(const net::StatsResponseMessage& stats,
                const std::vector<int64_t>& previous_in,
                double elapsed_seconds) {
  std::printf("algorithm %s  publishers %d  subscribers %d  out: %lld ins / "
              "%lld adj, stable %s\n",
              AlgorithmName(stats.algorithm_case),
              stats.publishers, stats.subscribers,
              static_cast<long long>(stats.output_inserts),
              static_cast<long long>(stats.output_adjusts),
              StableString(stats.output_stable).c_str());
  // Lag is measured against the leading replica's stable point: redundant
  // inputs present the same logical stream, so the leader marks how far a
  // healthy replica has reached (Sec. V-D uses the same comparison for
  // feedback).
  Timestamp leader = kMinTimestamp;
  for (const net::StatsInputRow& row : stats.inputs) {
    if (row.stable_point > leader) leader = row.stable_point;
  }
  std::printf("  %-3s %-12s %-5s %10s %10s %10s %10s %10s\n", "in",
              "peer", "state", "elements", "contrib", "dropped", "lag",
              "el/s");
  for (size_t s = 0; s < stats.inputs.size(); ++s) {
    const net::StatsInputRow& row = stats.inputs[s];
    const int64_t elements_in =
        row.inserts_in + row.adjusts_in + row.stables_in;
    std::string rate = "-";
    if (s < previous_in.size() && elapsed_seconds > 0) {
      rate = std::to_string(static_cast<long long>(
          static_cast<double>(elements_in - previous_in[s]) /
          elapsed_seconds));
    }
    std::string lag = "-";
    if (row.stable_point != kMinTimestamp && leader != kMinTimestamp) {
      lag = std::to_string(
          static_cast<long long>(leader - row.stable_point));
    }
    std::printf("  %-3d %-12s %-5s %10lld %10lld %10lld %10s %10s\n",
                row.stream_id,
                row.peer_name.empty() ? "(gone)" : row.peer_name.c_str(),
                row.connected ? (row.active ? "live" : "held")
                              : (row.active ? "lost" : "left"),
                static_cast<long long>(elements_in),
                static_cast<long long>(row.contributed),
                static_cast<long long>(row.dropped), lag.c_str(),
                rate.c_str());
  }
  // Partitioned merge (--merge-threads > 1): summarize how evenly the
  // (Vs, payload) hash spread the work.  A hot shard means a skewed key
  // distribution — the merge degrades toward single-threaded throughput.
  const int64_t shards = stats.metrics.Value("merge.shards", 0);
  if (shards > 1) {
    int64_t total = 0;
    int64_t busiest = 0;
    int64_t quietest = -1;
    for (int64_t k = 0; k < shards; ++k) {
      const int64_t elements = stats.metrics.Value(
          "merge.shard." + std::to_string(k) + ".elements", 0);
      total += elements;
      busiest = std::max(busiest, elements);
      if (quietest < 0 || elements < quietest) quietest = elements;
    }
    const double even = static_cast<double>(total) /
                        static_cast<double>(shards);
    std::printf("  shards %lld  elements %lld  busiest %lld  quietest %lld"
                "  skew %.2fx\n",
                static_cast<long long>(shards),
                static_cast<long long>(total),
                static_cast<long long>(busiest),
                static_cast<long long>(quietest),
                even > 0 ? static_cast<double>(busiest) / even : 1.0);
  }
  PrintLatencyRow(stats, "latency.rx_to_merge_us", "rx->merge");
  PrintLatencyRow(stats, "latency.merge_us", "merge");
  PrintLatencyRow(stats, "latency.merge_to_fanout_us", "merge->fanout");
  PrintLatencyRow(stats, "latency.fanout_us", "fanout");
  PrintLatencyRow(stats, "latency.publish_to_fanout_us", "publish->fanout");
  const int64_t stable_lag = stats.metrics.Value("merge.stable_lag_ms", -1);
  if (stable_lag >= 0) {
    std::printf("  stable lag %lld ms\n",
                static_cast<long long>(stable_lag));
  }
}

void PrintJson(const net::StatsResponseMessage& stats) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("algorithm");
  writer.String(AlgorithmName(stats.algorithm_case));
  writer.Key("publishers");
  writer.Int(stats.publishers);
  writer.Key("subscribers");
  writer.Int(stats.subscribers);
  writer.Key("output_stable");
  writer.Int(stats.output_stable);
  writer.Key("output_inserts");
  writer.Int(stats.output_inserts);
  writer.Key("output_adjusts");
  writer.Int(stats.output_adjusts);
  writer.Key("inputs");
  writer.BeginArray();
  for (const net::StatsInputRow& row : stats.inputs) {
    writer.BeginObject();
    writer.Key("stream_id");
    writer.Int(row.stream_id);
    writer.Key("peer");
    writer.String(row.peer_name);
    writer.Key("connected");
    writer.Bool(row.connected);
    writer.Key("active");
    writer.Bool(row.active);
    writer.Key("inserts_in");
    writer.Int(row.inserts_in);
    writer.Key("adjusts_in");
    writer.Int(row.adjusts_in);
    writer.Key("stables_in");
    writer.Int(row.stables_in);
    writer.Key("dropped");
    writer.Int(row.dropped);
    writer.Key("contributed");
    writer.Int(row.contributed);
    writer.Key("stable_point");
    writer.Int(row.stable_point);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("metrics");
  writer.Raw(stats.metrics.ToJson());
  writer.EndObject();
  std::printf("%s\n", writer.Take().c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() != 2) return Usage();
  const std::string host = flags.positional()[0];
  const int port = std::stoi(flags.positional()[1]);
  const double interval = flags.GetDouble("interval", 1.0);
  const int64_t count = flags.GetInt("count", 0);
  const bool json = flags.Has("json");

  std::unique_ptr<net::Connection> connection;
  Status status = net::TcpConnect(host, port, &connection);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  net::StatsClient monitor(std::move(connection));
  status = monitor.Handshake(flags.GetString("name", "stats"));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<int64_t> previous_in;
  auto previous_time = std::chrono::steady_clock::now();
  int64_t previous_mono_us = 0;
  for (int64_t polls = 0; count <= 0 || polls < count; ++polls) {
    if (polls > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
    net::StatsResponseMessage stats;
    status = monitor.PollStats(&stats);
    if (!status.ok()) {
      // Server drained and went away mid-watch: a clean end for a monitor.
      std::fprintf(stderr, "[lmerge_stats] server gone: %s\n",
                   status.ToString().c_str());
      return count > 0 ? 1 : 0;
    }
    const auto now = std::chrono::steady_clock::now();
    // Prefer the interval between the server's own snapshot captures: it is
    // exactly the window the counter deltas accumulated over.  Local clocks
    // only when the server predates the capture stamps (v4).
    double elapsed =
        std::chrono::duration<double>(now - previous_time).count();
    if (stats.metrics.captured_mono_us != 0 && previous_mono_us != 0) {
      elapsed = static_cast<double>(stats.metrics.captured_mono_us -
                                    previous_mono_us) /
                1e6;
    }
    if (json) {
      PrintJson(stats);
    } else {
      PrintTable(stats, previous_in, polls == 0 ? 0.0 : elapsed);
    }
    previous_time = now;
    previous_mono_us = stats.metrics.captured_mono_us;
    previous_in.clear();
    for (const net::StatsInputRow& row : stats.inputs) {
      previous_in.push_back(row.inserts_in + row.adjusts_in +
                            row.stables_in);
    }
  }
  // Best effort: the polling loop already rendered every snapshot; a
  // failed goodbye cannot change the exit code.
  (void)monitor.Finish("done");
  return 0;
}
