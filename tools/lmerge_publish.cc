// lmerge_publish — publish a stream-file tape to an lmerge_served daemon as
// one redundant input replica.
//
//   lmerge_publish <host> <port> <tape.lmst> [--name=replica-a]
//                  [--join-time=T] [--batch=N] [--kill-after=N]
//                  [--ignore-feedback]
//                  [--connect-timeout-ms=N] [--retry=N]
//
// --retry=N retries a failed connect up to N times with exponential
// backoff (100ms doubling to 2s), with --connect-timeout-ms bounding each
// attempt — so scripts start publisher and server concurrently instead of
// sleeping and hoping (scripts/demo_net.sh).
//
// --batch=N (default 64) packs N elements into one ELEMENTS frame; the
// server hands each decoded frame to the merge as a single batch, so larger
// values amortize framing and ring-handoff overhead at the cost of delivery
// latency (--batch=1 sends one ELEMENT frame per element).
// --kill-after=N drops the connection (no BYE) after N elements, modelling
// a crashed replica; re-running the tool afterwards models the rejoin
// (Sec. V-B).  Unless --ignore-feedback is given, FEEDBACK frames from the
// server fast-forward the tape: elements whose lifetime ended before the
// merged output's stable point are skipped instead of sent (Sec. V-D).

#include <cstdio>

#include "net/client.h"
#include "net/tcp.h"
#include "properties/runtime_stats.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lmerge_publish <host> <port> <tape.lmst> [--name=X]\n"
               "                      [--join-time=T] [--batch=N]\n"
               "                      [--kill-after=N] [--ignore-feedback]\n"
               "                      [--connect-timeout-ms=N] [--retry=N]\n"
               "  --batch=N  elements per ELEMENTS frame (default 64);\n"
               "             the server merges each frame as one batch\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() != 3) return Usage();
  const std::string host = flags.positional()[0];
  const int port = std::stoi(flags.positional()[1]);
  const std::string tape_path = flags.positional()[2];

  ElementSequence tape;
  Status status = ReadStreamFile(tape_path, &tape);
  if (!status.ok()) return Fail(status);

  // Declare the tape's actual shape so the server's factory can pick the
  // cheapest safe algorithm (Sec. IV-G): a full pre-scan of the tape is the
  // runtime-statistics route of Sec. IV-F.
  StreamStatsCollector collector;
  for (const StreamElement& element : tape) collector.Observe(element);
  const StreamProperties properties = collector.ObservedProperties();

  std::unique_ptr<net::Connection> connection;
  net::TcpConnectOptions connect_options;
  connect_options.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect-timeout-ms", 0));
  connect_options.retries = static_cast<int>(flags.GetInt("retry", 0));
  status = net::TcpConnect(host, port, connect_options, &connection);
  if (!status.ok()) return Fail(status);

  net::PublisherClient publisher(std::move(connection));
  net::WelcomeMessage welcome;
  const Timestamp join_time = flags.GetInt("join-time", kMinTimestamp);
  status = publisher.Handshake(properties, join_time,
                               flags.GetString("name", tape_path), &welcome);
  if (!status.ok()) return Fail(status);
  std::fprintf(stderr,
               "[lmerge_publish] %s: stream %d, server stable %s\n",
               tape_path.c_str(), welcome.stream_id,
               TimestampToString(welcome.output_stable).c_str());

  const int64_t batch_size = flags.GetInt("batch", 64);
  const int64_t kill_after = flags.GetInt("kill-after", -1);
  const bool honor_feedback = !flags.Has("ignore-feedback");

  int64_t sent = 0;
  int64_t skipped = 0;
  ElementSequence batch;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::Ok();
    const Status s = batch.size() == 1 ? publisher.Publish(batch[0])
                                       : publisher.PublishBatch(batch);
    batch.clear();
    return s;
  };
  for (const StreamElement& element : tape) {
    if (kill_after >= 0 && sent >= kill_after) {
      // Simulated crash: vanish mid-stream without BYE.
      (void)flush();
      std::fprintf(stderr,
                   "[lmerge_publish] %s: killed after %lld elements\n",
                   tape_path.c_str(), static_cast<long long>(sent));
      return 0;
    }
    if ((sent + skipped) % 256 == 0) {
      status = publisher.Poll();
      if (!status.ok()) return Fail(status);
      if (publisher.server_said_bye()) {
        std::fprintf(stderr, "[lmerge_publish] server closed session: %s\n",
                     publisher.bye_reason().c_str());
        return 1;
      }
    }
    if (honor_feedback && publisher.ShouldSkip(element)) {
      ++skipped;
      continue;
    }
    batch.push_back(element);
    ++sent;
    if (static_cast<int64_t>(batch.size()) >= batch_size) {
      status = flush();
      if (!status.ok()) return Fail(status);
    }
  }
  status = flush();
  if (!status.ok()) return Fail(status);
  status = publisher.Finish("tape complete");
  if (!status.ok()) return Fail(status);
  std::fprintf(stderr,
               "[lmerge_publish] %s: sent %lld elements, fast-forwarded "
               "past %lld (horizon %s)\n",
               tape_path.c_str(), static_cast<long long>(sent),
               static_cast<long long>(skipped),
               TimestampToString(publisher.feedback_horizon()).c_str());
  return 0;
}
