// lmerge_merge — logically merge stream files into one output tape.
//
//   lmerge_merge in1.lmst in2.lmst [in3.lmst ...] --out=merged.lmst
//                [--variant=R0|R1|R2|R3+|R3-|R4|counting]
//                [--policy=lazy|eager|conservative] [--stable-lag=T]
//                [--round-robin | --seed=N]
//
// Prints merge statistics (Theorem 1 quantities, drops, state) and, with
// --out, writes the merged physical stream for further processing.

#include <cstdio>

#include "common/random.h"
#include "core/factory.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lmerge_merge <in1.lmst> <in2.lmst> [...] "
               "[--out=FILE] [--variant=R3+] [--policy=lazy] "
               "[--stable-lag=T] [--seed=N]\n");
  return 2;
}

bool ParseVariant(const std::string& name, MergeVariant* variant) {
  if (name == "R0") *variant = MergeVariant::kLMR0;
  else if (name == "R1") *variant = MergeVariant::kLMR1;
  else if (name == "R2") *variant = MergeVariant::kLMR2;
  else if (name == "R3+" || name == "R3") *variant = MergeVariant::kLMR3Plus;
  else if (name == "R3-") *variant = MergeVariant::kLMR3Minus;
  else if (name == "R4") *variant = MergeVariant::kLMR4;
  else if (name == "counting") *variant = MergeVariant::kCounting;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() < 2) return Usage();

  std::vector<ElementSequence> inputs;
  for (const std::string& path : flags.positional()) {
    ElementSequence elements;
    const Status status = ReadStreamFile(path, &elements);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    inputs.push_back(std::move(elements));
  }

  MergeVariant variant = MergeVariant::kLMR4;
  if (!ParseVariant(flags.GetString("variant", "R4"), &variant)) {
    return Usage();
  }
  MergePolicy policy;
  const std::string policy_name = flags.GetString("policy", "lazy");
  if (policy_name == "eager") {
    policy = MergePolicy::Eager();
  } else if (policy_name == "conservative") {
    policy = MergePolicy::Conservative();
  } else if (policy_name != "lazy") {
    return Usage();
  }
  policy.stable_lag = flags.GetInt("stable-lag", 0);

  CollectingSink merged;
  CountingSink counter(&merged);
  auto algo = CreateMergeAlgorithm(
      variant, static_cast<int>(inputs.size()), &counter, policy);

  // Interleave inputs pseudo-randomly (seeded) or round-robin.
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 1)));
  const bool round_robin = flags.Has("round-robin");
  std::vector<size_t> next(inputs.size(), 0);
  size_t turn = 0;
  while (true) {
    std::vector<int> candidates;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (next[s] < inputs[s].size()) candidates.push_back(static_cast<int>(s));
    }
    if (candidates.empty()) break;
    int s;
    if (round_robin) {
      s = candidates[turn++ % candidates.size()];
    } else {
      s = candidates[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    }
    const Status status = algo->OnElement(
        s, inputs[static_cast<size_t>(s)][next[static_cast<size_t>(s)]]);
    if (!status.ok()) {
      std::fprintf(stderr, "merge error on %s: %s\n",
                   flags.positional()[static_cast<size_t>(s)].c_str(),
                   status.ToString().c_str());
      return 1;
    }
    ++next[static_cast<size_t>(s)];
  }

  const auto& stats = algo->stats();
  std::printf("merged %zu inputs with %s\n", inputs.size(),
              MergeVariantName(variant));
  std::printf("  in:  %lld inserts, %lld adjusts, %lld stables\n",
              static_cast<long long>(stats.inserts_in),
              static_cast<long long>(stats.adjusts_in),
              static_cast<long long>(stats.stables_in));
  std::printf("  out: %lld inserts, %lld adjusts, %lld stables "
              "(%lld duplicates/stale dropped)\n",
              static_cast<long long>(stats.inserts_out),
              static_cast<long long>(stats.adjusts_out),
              static_cast<long long>(stats.stables_out),
              static_cast<long long>(stats.dropped));
  std::printf("  residual state: %lld bytes; output TDB: %lld events, "
              "stable to %s\n",
              static_cast<long long>(algo->StateBytes()),
              static_cast<long long>(
                  Tdb::Reconstitute(merged.elements()).EventCount()),
              TimestampToString(algo->max_stable()).c_str());

  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    const Status status = WriteStreamFile(out_path, merged.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu elements)\n", out_path.c_str(),
                merged.elements().size());
  }
  return 0;
}
