// lmerge_gen — generate a synthetic physical stream and write it to a
// stream file.
//
//   lmerge_gen out.lmst --inserts=10000 --disorder=0.2 --stable-freq=0.01
//              --seed=42 --variant-seed=7 --split=0.3 [--ticker]
//
// Multiple invocations with the same generator seed but different
// --variant-seed values produce physically divergent but logically
// equivalent tapes — feed them to lmerge_merge.

#include <cstdio>

#include "tools/cli.h"
#include "workload/generator.h"
#include "workload/ticker.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lmerge_gen <out.lmst> [--inserts=N] [--disorder=F]\n"
      "                  [--stable-freq=F] [--duration=TICKS] [--max-gap=T]\n"
      "                  [--key-range=N] [--payload-bytes=N] [--pool=N]\n"
      "                  [--seed=N]\n"
      "                  [--variant-seed=N] [--split=F] [--open]\n"
      "                  [--finalize]\n"
      "                  [--ticker] [--symbols=N] [--quotes=N] [--close]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() != 1) return Usage();
  const std::string out_path = flags.positional()[0];

  workload::LogicalHistory history;
  if (flags.Has("ticker")) {
    workload::TickerConfig config;
    config.num_symbols = flags.GetInt("symbols", 8);
    config.quotes_per_symbol = flags.GetInt("quotes", 200);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 2012));
    history = GenerateTickerHistory(config);
    if (flags.Has("close")) {
      Timestamp close = 0;
      for (const Event& e : history.events) {
        if (e.ve != kInfinity) close = std::max(close, e.ve);
      }
      close += 1000;
      for (Event& e : history.events) {
        if (e.ve == kInfinity) e.ve = close;
      }
      history.stable_times.push_back(close + 1);
    }
  } else {
    workload::GeneratorConfig config;
    config.num_inserts = flags.GetInt("inserts", 10000);
    config.stable_freq = flags.GetDouble("stable-freq", 0.01);
    config.event_duration = flags.GetInt("duration", 100000);
    config.max_gap = flags.GetInt("max-gap", 20);
    config.key_range = flags.GetInt("key-range", 400);
    config.payload_string_bytes = flags.GetInt("payload-bytes", 1000);
    config.payload_pool_size = flags.GetInt("pool", 0);
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    history = GenerateHistory(config);
  }

  // --finalize stabilizes the whole tape (one stable past every event), so
  // downstream merges fully converge: without it the tail beyond the last
  // generated stable point stays provisional, and a lazy merge is free to
  // leave it unreflected.
  if (flags.Has("finalize")) {
    Timestamp max_ve = kMinTimestamp;
    for (const Event& e : history.events) {
      if (e.ve != kInfinity) max_ve = std::max(max_ve, e.ve);
    }
    history.stable_times.push_back(max_ve + 1);
  }

  workload::VariantOptions options;
  options.disorder_fraction = flags.GetDouble("disorder", 0.2);
  options.split_probability = flags.GetDouble("split", 0.3);
  options.provisional_open = flags.Has("open");
  options.seed = static_cast<uint64_t>(flags.GetInt("variant-seed", 7));
  const ElementSequence stream =
      GeneratePhysicalVariant(history, options);

  const Status status = WriteStreamFile(out_path, stream);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu elements (%zu logical events, %zu stables)\n",
              out_path.c_str(), stream.size(), history.events.size(),
              history.stable_times.size());
  return 0;
}
