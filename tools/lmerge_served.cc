// lmerge_served — the networked LMerge daemon: accepts redundant publisher
// replicas and subscribers over TCP and serves the merged stream.
//
//   lmerge_served --port=7654 [--bind=127.0.0.1]
//                 [--variant=auto|R0|R1|R2|R3+|R3-|R4|counting]
//                 [--policy=lazy|eager|conservative] [--stable-lag=T]
//                 [--no-feedback] [--out=merged.lmst]
//                 [--drain-publishers=N] [--quiet]
//
// With --drain-publishers=N the daemon exits once at least N publishers
// have connected and all publishers have disconnected again (the scripted
// end-to-end mode; see scripts/demo_net.sh).  --out captures the merged
// output to a stream file on exit, independent of any live subscribers.

#include <cstdio>

#include "core/merge_policy.h"
#include "net/server.h"
#include "net/tcp.h"
#include "stream/validate.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lmerge_served --port=N [--bind=ADDR] [--variant=auto|R4|...]\n"
      "                     [--policy=lazy|eager|conservative]\n"
      "                     [--stable-lag=T] [--no-feedback]\n"
      "                     [--out=FILE] [--drain-publishers=N] [--quiet]\n");
  return 2;
}

bool ParseVariant(const std::string& name, MergeVariant* variant) {
  if (name == "R0") *variant = MergeVariant::kLMR0;
  else if (name == "R1") *variant = MergeVariant::kLMR1;
  else if (name == "R2") *variant = MergeVariant::kLMR2;
  else if (name == "R3+" || name == "R3") *variant = MergeVariant::kLMR3Plus;
  else if (name == "R3-") *variant = MergeVariant::kLMR3Minus;
  else if (name == "R4") *variant = MergeVariant::kLMR4;
  else if (name == "counting") *variant = MergeVariant::kCounting;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("port") || !flags.positional().empty()) return Usage();
  const int port = static_cast<int>(flags.GetInt("port", 0));

  net::MergeServerOptions options;
  options.verbose = !flags.Has("quiet");
  options.feedback_enabled = !flags.Has("no-feedback");
  const std::string variant_name = flags.GetString("variant", "auto");
  if (variant_name != "auto") {
    MergeVariant variant;
    if (!ParseVariant(variant_name, &variant)) return Usage();
    options.variant = variant;
  }
  const std::string policy_name = flags.GetString("policy", "lazy");
  if (policy_name == "eager") {
    options.policy = MergePolicy::Eager();
  } else if (policy_name == "conservative") {
    options.policy = MergePolicy::Conservative();
  } else if (policy_name != "lazy") {
    return Usage();
  }
  options.policy.stable_lag = flags.GetInt("stable-lag", 0);

  net::MergeServer server(options);

  CollectingSink captured;
  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) server.AddOutputSink(&captured);

  std::unique_ptr<net::Listener> listener;
  Status status =
      net::TcpListen(port, &listener, flags.GetString("bind", "127.0.0.1"));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_served] listening on port %d\n",
               listener->port());

  net::ServeLoopOptions loop_options;
  loop_options.drain_publishers =
      static_cast<int>(flags.GetInt("drain-publishers", 0));
  net::ServeLoop(listener.get(), &server, loop_options);

  const MergeOutputStats stats = server.merge_stats();
  std::fprintf(stderr,
               "[lmerge_served] drained: %d publishers served, algorithm "
               "%s\n",
               server.publishers_seen(), server.algorithm_name());
  std::fprintf(stderr,
               "[lmerge_served] in: %lld ins / %lld adj / %lld stb; out: "
               "%lld ins / %lld adj / %lld stb; dropped %lld\n",
               static_cast<long long>(stats.inserts_in),
               static_cast<long long>(stats.adjusts_in),
               static_cast<long long>(stats.stables_in),
               static_cast<long long>(stats.inserts_out),
               static_cast<long long>(stats.adjusts_out),
               static_cast<long long>(stats.stables_out),
               static_cast<long long>(stats.dropped));

  if (!out_path.empty()) {
    // Sanity-check our own output before writing: the merged stream must be
    // a valid physical stream (zero lost or duplicated events is checked
    // end-to-end with lmerge_inspect --equiv).
    StreamValidator validator;
    status = validator.ConsumeAll(captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "[lmerge_served] OUTPUT INVALID: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    status = WriteStreamFile(out_path, captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_served] wrote %s (%zu elements)\n",
                 out_path.c_str(), captured.elements().size());
  }
  return 0;
}
