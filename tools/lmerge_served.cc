// lmerge_served — the networked LMerge daemon: accepts redundant publisher
// replicas and subscribers over TCP and serves the merged stream.
//
//   lmerge_served --port=7654 [--bind=127.0.0.1] [--http-port=N]
//                 [--variant=auto|R0|R1|R2|R3+|R3-|R4|counting]
//                 [--policy=lazy|eager|conservative] [--stable-lag=T]
//                 [--merge-threads=N] [--io-threads=N]
//                 [--max-outbound-mb=N] [--idle-timeout-ms=N]
//                 [--no-feedback] [--out=merged.lmst]
//                 [--drain-publishers=N] [--quiet]
//                 [--metrics-interval=SEC] [--metrics-out=FILE]
//                 [--trace-out=FILE] [--no-metrics]
//
// --merge-threads=N (default 1) shards the merge core across N threads by
// (payload, Vs) key hash behind a min-frontier stable-point aggregator
// (engine/partitioned.h); N=1 is the byte-identical single-threaded path.
//
// --io-threads=N (default 1) sizes the epoll event-loop pool owning every
// connection (net/event_loop.h) — there are no per-session threads, so the
// whole transport costs N threads regardless of subscriber count.
// --max-outbound-mb bounds each subscriber's unsent backlog (overflow
// disconnects the slow consumer); --idle-timeout-ms kills peers that stall
// mid-frame (docs/SERVICE.md "Event-loop transport").
//
// With --drain-publishers=N the daemon exits once at least N publishers
// have connected and all publishers have disconnected again (the scripted
// end-to-end mode; see scripts/demo_net.sh).  --out captures the merged
// output to a stream file on exit, independent of any live subscribers.
//
// Observability (docs/OBSERVABILITY.md): --metrics-interval periodically
// snapshots the metrics registry as one JSON object — to --metrics-out
// (rewritten in place each tick, plus a final post-drain snapshot) or as
// stderr lines.  --trace-out enables the span recorder and dumps a Chrome
// trace_event file on exit (load in Perfetto).  --no-metrics flips the
// process-wide kill switch, the A/B baseline for overhead measurements.
//
// --http-port=N serves GET /metrics (OpenMetrics text), /metrics.json,
// /healthz, and /readyz on its own event loop (obs/http_exporter.h);
// /readyz pings the merge thread AND every IO event loop against a
// deadline, so a wedged pipeline turns the probe 503.  Port 0 picks an
// ephemeral port (logged at startup).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/mutex.h"
#include "core/merge_policy.h"
#include "net/server.h"
#include "net/tcp.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/validate.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lmerge_served --port=N [--bind=ADDR] [--http-port=N]\n"
      "                     [--variant=auto|R4|...]\n"
      "                     [--policy=lazy|eager|conservative]\n"
      "                     [--stable-lag=T] [--merge-threads=N]\n"
      "                     [--io-threads=N] [--max-outbound-mb=N]\n"
      "                     [--idle-timeout-ms=N] [--no-feedback]\n"
      "                     [--out=FILE] [--drain-publishers=N] [--quiet]\n"
      "                     [--metrics-interval=SEC] [--metrics-out=FILE]\n"
      "                     [--trace-out=FILE] [--no-metrics]\n");
  return 2;
}

// Writes `text` to `path` via rename, so a concurrent reader sees either
// the previous snapshot or the new one, never a torn file.
bool WriteTextFile(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << text << "\n";
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool ParseVariant(const std::string& name, MergeVariant* variant) {
  if (name == "R0") *variant = MergeVariant::kLMR0;
  else if (name == "R1") *variant = MergeVariant::kLMR1;
  else if (name == "R2") *variant = MergeVariant::kLMR2;
  else if (name == "R3+" || name == "R3") *variant = MergeVariant::kLMR3Plus;
  else if (name == "R3-") *variant = MergeVariant::kLMR3Minus;
  else if (name == "R4") *variant = MergeVariant::kLMR4;
  else if (name == "counting") *variant = MergeVariant::kCounting;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("port") || !flags.positional().empty()) return Usage();
  const int port = static_cast<int>(flags.GetInt("port", 0));

  net::MergeServerOptions options;
  options.verbose = !flags.Has("quiet");
  options.feedback_enabled = !flags.Has("no-feedback");
  const std::string variant_name = flags.GetString("variant", "auto");
  if (variant_name != "auto") {
    MergeVariant variant;
    if (!ParseVariant(variant_name, &variant)) return Usage();
    options.variant = variant;
  }
  const std::string policy_name = flags.GetString("policy", "lazy");
  if (policy_name == "eager") {
    options.policy = MergePolicy::Eager();
  } else if (policy_name == "conservative") {
    options.policy = MergePolicy::Conservative();
  } else if (policy_name != "lazy") {
    return Usage();
  }
  options.policy.stable_lag = flags.GetInt("stable-lag", 0);
  options.merge_threads =
      static_cast<int>(flags.GetInt("merge-threads", 1));
  if (options.merge_threads < 1) return Usage();

  if (flags.Has("no-metrics")) obs::MetricsRegistry::set_enabled(false);
  const std::string trace_path = flags.GetString("trace-out", "");
  if (!trace_path.empty()) obs::TraceRecorder::Global().set_enabled(true);
  const std::string metrics_path = flags.GetString("metrics-out", "");
  const int64_t metrics_interval = flags.GetInt("metrics-interval", 0);

  net::MergeServer server(options);

  CollectingSink captured;
  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) server.AddOutputSink(&captured);

  // Periodic metrics snapshots: one thread, woken early on shutdown.  Each
  // tick is a live (non-quiescing) registry snapshot — exactness comes from
  // the final post-drain snapshot written below.
  Mutex metrics_mutex;
  CondVar metrics_cv;
  bool metrics_stop = false;  // guarded by metrics_mutex
  std::thread metrics_thread;
  if (metrics_interval > 0) {
    metrics_thread = std::thread([&] {
      MutexLock lock(metrics_mutex);
      while (!metrics_stop) {
        // Timed park; a spurious wake just emits one snapshot early.
        (void)metrics_cv.WaitFor(lock,
                                 std::chrono::seconds(metrics_interval));
        if (metrics_stop) break;
        lock.Unlock();
        const std::string json = server.MetricsSnapshot().ToJson();
        if (!metrics_path.empty()) {
          WriteTextFile(metrics_path, json);
        } else {
          std::fprintf(stderr, "[lmerge_served] metrics %s\n", json.c_str());
        }
        lock.Lock();
      }
    });
  }

  std::unique_ptr<net::Listener> listener;
  Status status =
      net::TcpListen(port, &listener, flags.GetString("bind", "127.0.0.1"));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_served] listening on port %d\n",
               listener->port());

  net::LoopPingRegistry loop_pings;
  std::unique_ptr<obs::HttpExporter> http;
  if (flags.Has("http-port")) {
    obs::HttpExporterOptions http_options;
    http_options.port = static_cast<int>(flags.GetInt("http-port", 0));
    http_options.bind_address = flags.GetString("bind", "127.0.0.1");
    http_options.snapshot_source = [&server] {
      return server.MetricsSnapshot();
    };
    // Readiness = merge thread responsive AND every IO loop responsive,
    // each probed with half the deadline (two sequential waits).
    http_options.ready_check = [&server,
                                &loop_pings](std::chrono::milliseconds t) {
      const std::chrono::milliseconds half = t / 2;
      return server.Ready(half) && loop_pings.Ping(half);
    };
    status = obs::HttpExporter::Start(http_options, &http);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_served] metrics http on port %d\n",
                 http->port());
  }

  net::ServeLoopOptions loop_options;
  loop_options.drain_publishers =
      static_cast<int>(flags.GetInt("drain-publishers", 0));
  loop_options.io_threads = static_cast<int>(flags.GetInt("io-threads", 1));
  if (loop_options.io_threads < 1) return Usage();
  const int64_t max_outbound_mb = flags.GetInt("max-outbound-mb", 64);
  if (max_outbound_mb < 1) return Usage();
  loop_options.max_outbound_bytes =
      static_cast<size_t>(max_outbound_mb) * 1024 * 1024;
  loop_options.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 0));
  loop_options.loop_pings = &loop_pings;
  net::ServeLoop(listener.get(), &server, loop_options);

  if (http != nullptr) http->Stop();

  if (metrics_thread.joinable()) {
    {
      MutexLock lock(metrics_mutex);
      metrics_stop = true;
    }
    metrics_cv.NotifyAll();
    metrics_thread.join();
  }

  const MergeOutputStats stats = server.merge_stats();
  std::fprintf(stderr,
               "[lmerge_served] drained: %d publishers served, algorithm "
               "%s\n",
               server.publishers_seen(), server.algorithm_name());
  std::fprintf(stderr,
               "[lmerge_served] in: %lld ins / %lld adj / %lld stb; out: "
               "%lld ins / %lld adj / %lld stb; dropped %lld\n",
               static_cast<long long>(stats.inserts_in),
               static_cast<long long>(stats.adjusts_in),
               static_cast<long long>(stats.stables_in),
               static_cast<long long>(stats.inserts_out),
               static_cast<long long>(stats.adjusts_out),
               static_cast<long long>(stats.stables_out),
               static_cast<long long>(stats.dropped));

  if (!out_path.empty()) {
    // Sanity-check our own output before writing: the merged stream must be
    // a valid physical stream (zero lost or duplicated events is checked
    // end-to-end with lmerge_inspect --equiv).
    StreamValidator validator;
    status = validator.ConsumeAll(captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "[lmerge_served] OUTPUT INVALID: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    status = WriteStreamFile(out_path, captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_served] wrote %s (%zu elements)\n",
                 out_path.c_str(), captured.elements().size());
  }

  // Final snapshot after the drain + flush above (merge_stats() quiesces),
  // so per-input counters here are exact — what demo_net.sh asserts on.
  if (!metrics_path.empty()) {
    if (WriteTextFile(metrics_path, server.MetricsSnapshot().ToJson())) {
      std::fprintf(stderr, "[lmerge_served] wrote metrics %s\n",
                   metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (WriteTextFile(trace_path, recorder.DumpChromeTraceJson())) {
      std::fprintf(stderr,
                   "[lmerge_served] wrote trace %s (%lld spans recorded)\n",
                   trace_path.c_str(),
                   static_cast<long long>(recorder.recorded()));
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}
