// lmerge_inspect — examine a stream file: validate it, summarize its
// logical content, optionally dump elements, payload-interning statistics,
// or compare with another tape.  With --checkpoint, examine a checkpoint
// blob instead: header, section sizes, pool entry count, and the embedded
// cut certificate.
//
//   lmerge_inspect tape.lmst [--dump[=N]] [--payload-stats[=N]]
//                  [--equiv=other.lmst]
//   lmerge_inspect --checkpoint=state.ckpt

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/checkpoint.h"
#include "common/payload_store.h"
#include "replica/cut_certificate.h"
#include "stream/validate.h"
#include "temporal/tdb.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int InspectCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  CheckpointInfo info;
  Status status = InspectCheckpoint(bytes, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: checkpoint v%u (magic LMCG), %zu bytes\n", path.c_str(),
              info.version, info.total_bytes);
  if (info.version == kCheckpointVersionV1) {
    std::printf("  body: %zu bytes (payloads inline)\n", info.body_bytes);
    return 0;
  }
  std::printf("  flags: 0x%02x%s\n", info.flags,
              (info.flags & kCheckpointFlagCutCertificate) != 0
                  ? " (cut certificate)"
                  : "");
  std::printf("  sections: cut cert %zu bytes, payload pool %zu bytes "
              "(%u entries), body %zu bytes\n",
              info.cut_certificate_bytes, info.pool_bytes, info.pool_entries,
              info.body_bytes);
  if (info.cut_certificate.empty()) return 0;

  replica::CutCertificate cert;
  status = replica::ParseCutCertificate(info.cut_certificate, &cert);
  if (!status.ok()) {
    std::fprintf(stderr, "error: bad cut certificate: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("  cut: %s, output stable %s, dedup horizon %lld elements\n",
              MergeVariantName(cert.variant),
              TimestampToString(cert.output_stable).c_str(),
              static_cast<long long>(cert.elements_sent_at_cut));
  for (const replica::CutInputState& input : cert.inputs) {
    std::printf("    input %d: %s, stable to %s, %lld elements in\n",
                input.stream_id, input.active ? "active" : "detached",
                TimestampToString(input.stable_point).c_str(),
                static_cast<long long>(input.elements_in));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("checkpoint")) {
    std::string path = flags.GetString("checkpoint", "");
    // Bare `--checkpoint <file>` parses as the flag's implicit "true" plus a
    // positional; accept both spellings.
    if ((path.empty() || path == "true") && !flags.positional().empty()) {
      path = flags.positional()[0];
    }
    if (path.empty()) {
      std::fprintf(stderr, "usage: lmerge_inspect --checkpoint=<file>\n");
      return 2;
    }
    return InspectCheckpointFile(path);
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: lmerge_inspect <tape.lmst> [--dump[=N]] "
                 "[--payload-stats[=N]] [--equiv=other.lmst] | "
                 "--checkpoint=<file>\n");
    return 2;
  }
  ElementSequence elements;
  Status status = ReadStreamFile(flags.positional()[0], &elements);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  StreamValidator validator;
  int64_t inserts = 0;
  int64_t adjusts = 0;
  int64_t stables = 0;
  for (const StreamElement& e : elements) {
    status = validator.Consume(e);
    if (!status.ok()) {
      std::fprintf(stderr, "INVALID at element %lld: %s\n",
                   static_cast<long long>(validator.element_count()),
                   status.ToString().c_str());
      return 1;
    }
    switch (e.kind()) {
      case ElementKind::kInsert:
        ++inserts;
        break;
      case ElementKind::kAdjust:
        ++adjusts;
        break;
      case ElementKind::kStable:
        ++stables;
        break;
    }
  }
  const Tdb& tdb = validator.tdb();
  std::printf("%s: VALID physical stream\n", flags.positional()[0].c_str());
  std::printf("  %zu elements: %lld inserts, %lld adjusts (%.1f%%), %lld "
              "stables\n",
              elements.size(), static_cast<long long>(inserts),
              static_cast<long long>(adjusts),
              elements.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(adjusts) /
                        static_cast<double>(elements.size()),
              static_cast<long long>(stables));
  std::printf("  logical TDB: %lld events (%lld distinct), stable to %s, "
              "max Vs %s, (Vs,payload) key: %s\n",
              static_cast<long long>(tdb.EventCount()),
              static_cast<long long>(tdb.DistinctEventCount()),
              TimestampToString(tdb.stable_point()).c_str(),
              TimestampToString(validator.max_vs()).c_str(),
              tdb.VsPayloadIsKey() ? "yes" : "no");

  if (flags.Has("dump")) {
    const int64_t limit = flags.GetInt("dump", 20);
    int64_t shown = 0;
    for (const StreamElement& e : elements) {
      if (shown++ >= limit) break;
      std::printf("  %s\n", e.ToString().c_str());
    }
    if (static_cast<int64_t>(elements.size()) > limit) {
      std::printf("  ... (%zu more)\n",
                  elements.size() - static_cast<size_t>(limit));
    }
  }

  if (flags.Has("payload-stats")) {
    // Decoding the tape interned every payload into the global store, so
    // the tape summary and the store counters describe the same rows.
    std::printf("payload interning:\n");
    const PayloadStatsReport report = ComputePayloadStats(elements);
    PayloadStore& store = PayloadStore::Global();
    std::printf("%s", FormatPayloadStats(report, store.GetStats()).c_str());

    // The most-shared entries, by live reference count.
    struct EntryLine {
      int64_t refs;
      int64_t bytes;
      std::string preview;
    };
    std::vector<EntryLine> entries;
    store.ForEach([&entries](const RowRep& rep, int64_t refs) {
      // Format from the raw fields: constructing a Row here would intern
      // under the shard lock ForEach already holds.
      std::string preview = "(";
      for (size_t i = 0; i < rep.fields.size(); ++i) {
        if (i > 0) preview += ", ";
        preview += rep.fields[i].ToString();
      }
      preview += ")";
      if (preview.size() > 48) preview = preview.substr(0, 45) + "...";
      entries.push_back({refs, rep.deep_bytes, std::move(preview)});
    });
    std::sort(entries.begin(), entries.end(),
              [](const EntryLine& a, const EntryLine& b) {
                return a.refs > b.refs;
              });
    const int64_t limit = flags.GetInt("payload-stats", 10);
    int64_t shown = 0;
    for (const EntryLine& entry : entries) {
      if (shown++ >= limit) break;
      std::printf("  %6lld refs  %8lld bytes  %s\n",
                  static_cast<long long>(entry.refs),
                  static_cast<long long>(entry.bytes),
                  entry.preview.c_str());
    }
    if (static_cast<int64_t>(entries.size()) > limit) {
      std::printf("  ... (%zu more entries)\n",
                  entries.size() - static_cast<size_t>(limit));
    }
  }

  const std::string other_path = flags.GetString("equiv", "");
  if (!other_path.empty()) {
    ElementSequence other;
    status = ReadStreamFile(other_path, &other);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    const bool equal = tdb.Equals(Tdb::Reconstitute(other));
    std::printf("  logically equivalent to %s: %s\n", other_path.c_str(),
                equal ? "YES" : "NO");
    return equal ? 0 : 3;
  }
  return 0;
}
