// lmerge_standby — hot standby daemon for an lmerge_served instance
// (docs/REPLICATION.md).
//
//   lmerge_standby --primary-port=7654 --port=7655
//                  [--primary-host=127.0.0.1] [--bind=127.0.0.1]
//                  [--out=merged.lmst] [--drain-publishers=N] [--quiet]
//                  [--metrics-interval=SEC] [--metrics-out=FILE]
//                  [--connect-timeout-ms=N] [--retry=N]
//
// Connects to the primary as a v4 standby, jumpstarts from its checkpoint
// (CHECKPOINT_REQUEST -> CUT_CERT -> chunks, under live traffic), then
// shadows the primary by feeding its merged output into a local
// MergeServer listening on --port.  When the primary goes away the standby
// promotes itself: the feed stream leaves via the ordinary Sec. V-C
// protocol and surviving publishers reconnect here.
//
// With --drain-publishers=N the daemon exits once N *external* publishers
// have been served and all publishers (including the internal feed) have
// disconnected — the scripted-demo mode (scripts/demo_failover.sh).
//
// --out writes the standby's view of the whole logical stream on exit: the
// deduped pre-cut prefix of the primary's output followed by the local
// server's own output.  lmerge_inspect --equiv against the primary's
// capture is the end-to-end zero-loss/zero-duplication check.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/mutex.h"
#include "net/server.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "replica/standby.h"
#include "stream/validate.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lmerge_standby --primary-port=N --port=N\n"
      "                      [--primary-host=ADDR] [--bind=ADDR]\n"
      "                      [--out=FILE] [--drain-publishers=N] [--quiet]\n"
      "                      [--metrics-interval=SEC] [--metrics-out=FILE]\n"
      "                      [--jumpstart-delay-ms=N] [--checkpoint-out=FILE]\n"
      "                      [--connect-timeout-ms=N] [--retry=N]\n");
  return 2;
}

// Writes `text` to `path` via rename, so a concurrent reader sees either
// the previous snapshot or the new one, never a torn file.
bool WriteTextFile(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out) return false;
    out << text << "\n";
    if (!out) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// Byte-exact write (no trailing newline) for binary artifacts.
bool WriteBinaryFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!flags.Has("primary-port") || !flags.Has("port") ||
      !flags.positional().empty()) {
    return Usage();
  }
  const bool quiet = flags.Has("quiet");

  replica::StandbyOptions options;
  options.name = "standby";
  options.verbose = !quiet;
  options.server.verbose = !quiet;
  replica::StandbyReplica standby(options);

  CollectingSink captured;
  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) standby.server().AddOutputSink(&captured);

  // Local listener first, so subscribers can attach while we shadow.
  std::unique_ptr<net::Listener> listener;
  Status status = net::TcpListen(static_cast<int>(flags.GetInt("port", 0)),
                                 &listener,
                                 flags.GetString("bind", "127.0.0.1"));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_standby] listening on port %d\n",
               listener->port());

  std::unique_ptr<net::Connection> primary;
  net::TcpConnectOptions connect_options;
  connect_options.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect-timeout-ms", 0));
  connect_options.retries = static_cast<int>(flags.GetInt("retry", 0));
  status = net::TcpConnect(
      flags.GetString("primary-host", "127.0.0.1"),
      static_cast<int>(flags.GetInt("primary-port", 0)), connect_options,
      &primary);
  if (status.ok()) status = standby.Connect(std::move(primary));
  // An optional shadowing window before the jumpstart: output the primary
  // produces meanwhile queues on the subscription and is accounted by the
  // cut certificate's dedup horizon (demos use this to force a mid-stream
  // snapshot).
  const int64_t delay_ms = flags.GetInt("jumpstart-delay-ms", 0);
  if (status.ok() && delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (status.ok()) status = standby.Jumpstart();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string checkpoint_path = flags.GetString("checkpoint-out", "");
  if (!checkpoint_path.empty()) {
    if (!WriteBinaryFile(checkpoint_path, standby.checkpoint_blob())) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   checkpoint_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_standby] wrote checkpoint %s (%zu bytes)\n",
                 checkpoint_path.c_str(), standby.checkpoint_blob().size());
  }
  std::fprintf(
      stderr,
      "[lmerge_standby] jumpstarted: %s, deduped %lld, replayed %lld\n",
      standby.has_state() ? "snapshot adopted" : "no snapshot",
      static_cast<long long>(standby.deduped_elements()),
      static_cast<long long>(standby.replayed_elements()));

  // Shadow the primary until it dies, then take over.
  std::thread pump([&standby, quiet] {
    Status pump_status = standby.PumpLive();
    if (!pump_status.ok()) {
      std::fprintf(stderr, "[lmerge_standby] pump error: %s\n",
                   pump_status.ToString().c_str());
      return;
    }
    if (!quiet) {
      std::fprintf(stderr,
                   "[lmerge_standby] primary gone (%s), promoting\n",
                   standby.end_reason().c_str());
    }
    pump_status = standby.Promote("primary gone: " + standby.end_reason());
    if (!pump_status.ok()) {
      std::fprintf(stderr, "[lmerge_standby] promote error: %s\n",
                   pump_status.ToString().c_str());
    }
  });

  const std::string metrics_path = flags.GetString("metrics-out", "");
  const int64_t metrics_interval = flags.GetInt("metrics-interval", 0);
  Mutex metrics_mutex;
  CondVar metrics_cv;
  bool metrics_stop = false;  // guarded by metrics_mutex
  std::thread metrics_thread;
  if (metrics_interval > 0) {
    metrics_thread = std::thread([&] {
      MutexLock lock(metrics_mutex);
      while (!metrics_stop) {
        (void)metrics_cv.WaitFor(lock,
                                 std::chrono::seconds(metrics_interval));
        if (metrics_stop) break;
        lock.Unlock();
        const std::string json =
            standby.server().MetricsSnapshot().ToJson();
        if (!metrics_path.empty()) {
          WriteTextFile(metrics_path, json);
        } else {
          std::fprintf(stderr, "[lmerge_standby] metrics %s\n", json.c_str());
        }
        lock.Lock();
      }
    });
  }

  net::ServeLoopOptions loop_options;
  const int drain = static_cast<int>(flags.GetInt("drain-publishers", 0));
  // +1: the internal feed session is a publisher too.
  if (drain > 0) loop_options.drain_publishers = drain + 1;
  net::ServeLoop(listener.get(), &standby.server(), loop_options);
  pump.join();

  if (metrics_thread.joinable()) {
    {
      MutexLock lock(metrics_mutex);
      metrics_stop = true;
    }
    metrics_cv.NotifyAll();
    metrics_thread.join();
  }

  std::fprintf(stderr,
               "[lmerge_standby] drained: %d publishers served, algorithm "
               "%s, feed %lld elements (%lld deduped, %lld replayed)\n",
               standby.server().publishers_seen(),
               standby.server().algorithm_name(),
               static_cast<long long>(standby.feed_elements()),
               static_cast<long long>(standby.deduped_elements()),
               static_cast<long long>(standby.replayed_elements()));

  if (!out_path.empty()) {
    // Prefix (pre-cut primary output, covered by the adopted snapshot) +
    // our own output = the full physical stream; validate before writing.
    ElementSequence full = standby.pre_cut();
    full.insert(full.end(), captured.elements().begin(),
                captured.elements().end());
    StreamValidator validator;
    status = validator.ConsumeAll(full);
    if (!status.ok()) {
      std::fprintf(stderr, "[lmerge_standby] OUTPUT INVALID: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    status = WriteStreamFile(out_path, full);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_standby] wrote %s (%zu elements)\n",
                 out_path.c_str(), full.size());
  }

  if (!metrics_path.empty()) {
    if (WriteTextFile(metrics_path,
                      standby.server().MetricsSnapshot().ToJson())) {
      std::fprintf(stderr, "[lmerge_standby] wrote metrics %s\n",
                   metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  return 0;
}
