"""Whole-program checks over lmerge_analyze facts.

Consumes the facts JSON produced by either frontend (the Clang LibTooling
extractor or the lexer fallback in extract.py) and enforces the three
contracts described in docs/STATIC_ANALYSIS.md:

  lock-order       Build the global lock acquisition graph (lock A held
                   while lock B is acquired => edge A -> B, including
                   acquisitions reached through calls made with A held).
                   Fail on any cycle, on any double-acquire of one lock,
                   and on any edge not declared via LM_ACQUIRED_AFTER or
                   the config's `lock_order` section.  A lock declared a
                   *leaf* may be acquired under anything but must never
                   have an outgoing edge.

  thread-affinity  No function annotated LM_MERGE_THREAD_ONLY may be
                   reachable through the call graph from an off-merge-
                   thread root (IO loop callbacks, session entry points,
                   the HTTP exporter, tool mains).  Lambdas are separate
                   call-graph nodes: handing work to CallOnMergeThread /
                   EventLoop::Post crosses a thread boundary, which is
                   exactly where reachability should stop.

  hot-path         No function reachable from an LM_HOT_PATH root may
                   allocate (operator new, malloc family, container
                   growth) unless the site is allowlisted with a reason.

All exemptions live in tools/analyzer/analyzer_config.json — a machine-
readable allowlist reviewed like code (same contract as
scripts/lint_allowlist.json).
"""

import fnmatch
from collections import deque


class Violation:
    def __init__(self, check, file, line, message, path=None):
        self.check = check
        self.file = file
        self.line = line
        self.message = message
        self.path = path or []

    def render(self):
        text = f"{self.file}:{self.line}: [{self.check}] {self.message}"
        if self.path:
            text += "\n    call path: " + " -> ".join(self.path)
        return text


def _match_any(name, patterns):
    return any(fnmatch.fnmatchcase(name, p) for p in patterns)


class Analyzer:
    def __init__(self, facts, config):
        self.facts = facts
        self.config = config
        self.functions = {f["name"]: f for f in facts["functions"]}
        self.classes = {c["name"]: c for c in facts["classes"]}
        self._base_cache = {}
        self._method_index = {}       # method name -> [class names]
        for cls in self.classes.values():
            for m in cls["methods"]:
                self._method_index.setdefault(m, []).append(cls["name"])
        self._override_cache = {}
        self.violations = []
        # entry_held[fn] = {lock: (caller, line) | None}; None = from
        # LM_REQUIRES on the function itself.
        self.entry_held = {}
        self.lock_edges = {}          # (before, after) -> edge info

    # --- class hierarchy ---------------------------------------------------

    def _resolve_class(self, name):
        if name in self.classes:
            return name
        suffix = "::" + name
        cands = [c for c in self.classes if c.endswith(suffix)]
        if len(cands) == 1:
            return cands[0]
        return None

    def _bases(self, cls_name):
        if cls_name in self._base_cache:
            return self._base_cache[cls_name]
        out = []
        seen = {cls_name}
        queue = list(self.classes.get(cls_name, {}).get("bases", []))
        while queue:
            base = self._resolve_class(queue.pop())
            if base and base not in seen:
                seen.add(base)
                out.append(base)
                queue.extend(self.classes[base].get("bases", []))
        self._base_cache[cls_name] = out
        return out

    def _split_method(self, qname):
        """'ns::Class::Method' -> (class name or None, method)."""
        if "::" not in qname:
            return None, qname
        holder, method = qname.rsplit("::", 1)
        if holder in self.classes:
            return holder, method
        return None, method

    def _overrides(self, qname):
        """Call targets for `qname`: itself plus every override in derived
        classes (a call through a base pointer may land on any of them)."""
        if qname in self._override_cache:
            return self._override_cache[qname]
        targets = [qname] if qname in self.functions else []
        holder, method = self._split_method(qname)
        if holder is not None:
            for cls_name, cls in self.classes.items():
                if cls_name == holder or method not in cls["methods"]:
                    continue
                if holder in self._bases(cls_name):
                    cand = cls_name + "::" + method
                    if cand in self.functions:
                        targets.append(cand)
        if not targets:
            targets = []
        self._override_cache[qname] = targets
        return targets

    def _annotated(self, annotation):
        """Functions carrying `annotation`, closed over overriding methods
        (an override of an annotated virtual inherits the contract)."""
        direct = {name for name, f in self.functions.items()
                  if annotation in f.get("annotations", ())}
        closed = set(direct)
        for name in direct:
            closed.update(self._overrides(name))
        return closed

    # --- lock-order --------------------------------------------------------

    @staticmethod
    def _chain_edges(cfg):
        """`chains` mirror DESIGN.md's canonical order: a chain [A, B, C]
        declares every forward pair (A,B), (A,C), (B,C)."""
        edges = set()
        for chain in cfg.get("chains", []):
            locks = chain["locks"] if isinstance(chain, dict) else chain
            for i, before in enumerate(locks):
                for after in locks[i + 1:]:
                    edges.add((before, after))
        return edges

    def check_lock_order(self):
        cfg = self.config.get("lock_order", {})
        leaf_locks = {e["lock"] for e in cfg.get("leaf_locks", [])}
        declared = {(e["before"], e["after"])
                    for e in self.facts.get("declared_edges", [])}
        declared |= {(e["before"], e["after"]) for e in cfg.get("edges", [])}
        declared |= self._chain_edges(cfg)

        # unresolved acquisitions are contract violations: a lock the
        # analyzer cannot name is a lock it cannot order.
        for fn in self.functions.values():
            for acq in fn["acquires"]:
                if not acq.get("resolved", True):
                    self.violations.append(Violation(
                        "lock-order", fn["file"], acq["line"],
                        f"cannot resolve lock expression '{acq['lock']}' in "
                        f"{fn['name']}; name the mutex so the acquisition "
                        "graph stays complete"))

        self._propagate_held()

        # direct (lexical) nesting edges + propagated (entry-held) edges
        for fn in self.functions.values():
            entry = self.entry_held.get(fn["name"], {})
            for acq in fn["acquires"]:
                if not acq.get("resolved", True):
                    continue
                lock = acq["lock"]
                for held in acq["held"]:
                    self._add_edge(held, lock, fn, acq["line"],
                                   propagated=False)
                    if held == lock:
                        self.violations.append(Violation(
                            "lock-order", fn["file"], acq["line"],
                            f"{fn['name']} acquires {lock} while already "
                            "holding it (self-deadlock)"))
                for held in entry:
                    if held not in acq["held"]:
                        self._add_edge(held, lock, fn, acq["line"],
                                       propagated=True)

        # leaf discipline and declaration coverage
        for (before, after), edge in sorted(self.lock_edges.items()):
            if before in leaf_locks:
                self.violations.append(Violation(
                    "lock-order", edge["file"], edge["line"],
                    f"{after} acquired while holding leaf lock {before} "
                    f"(declared terminal in analyzer_config.json)",
                    path=edge.get("path")))
                continue
            if after in leaf_locks:
                continue
            if (before, after) not in declared:
                self.violations.append(Violation(
                    "lock-order", edge["file"], edge["line"],
                    f"undeclared lock-order edge {before} -> {after}; "
                    "declare it with LM_ACQUIRED_AFTER or in "
                    "analyzer_config.json lock_order.edges",
                    path=edge.get("path")))

        self._find_cycles()

    def _add_edge(self, before, after, fn, line, propagated):
        if before == after:
            # Distinct-instance recursion is reported separately above for
            # the definite (lexical) case; propagated same-name pairs are
            # instance-ambiguous and resolved by the cycle check.
            return
        key = (before, after)
        if key not in self.lock_edges:
            path = None
            if propagated:
                path = self._held_path(fn["name"], before)
            self.lock_edges[key] = {
                "before": before, "after": after,
                "file": fn["file"], "line": line,
                "function": fn["name"], "propagated": propagated,
                "path": path,
            }

    def _propagate_held(self):
        """Worklist: locks possibly held on entry to each function, from
        LM_REQUIRES plus every resolved call site's held set."""
        for fn in self.functions.values():
            self.entry_held[fn["name"]] = {
                lock: None for lock in fn.get("requires", ())}
        work = deque(self.functions)
        while work:
            name = work.popleft()
            fn = self.functions[name]
            entry = self.entry_held[name]
            for call in fn["calls"]:
                incoming = dict.fromkeys(call["held"])
                for lock in entry:
                    incoming.setdefault(lock)
                if not incoming:
                    continue
                for target in self._overrides(call["callee"]):
                    t_entry = self.entry_held.setdefault(target, {})
                    changed = False
                    for lock in incoming:
                        if lock not in t_entry:
                            t_entry[lock] = (name, call["line"])
                            changed = True
                    if changed and target in self.functions:
                        work.append(target)

    def _held_path(self, fn_name, lock):
        """Reconstructs how `lock` came to be held on entry to fn_name."""
        path = [fn_name]
        seen = {fn_name}
        cur = fn_name
        while True:
            via = self.entry_held.get(cur, {}).get(lock)
            if via is None:
                break
            caller, _line = via
            if caller in seen:
                break
            seen.add(caller)
            path.insert(0, caller)
            cur = caller
        return path

    def _find_cycles(self):
        graph = {}
        for before, after in self.lock_edges:
            graph.setdefault(before, set()).add(after)
        index = {}
        lowlink = {}
        on_stack = set()
        stack = []
        sccs = []
        counter = [0]

        def strongconnect(v):
            index[v] = lowlink[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in graph.get(v, ()):
                if w not in index:
                    strongconnect(w)
                    lowlink[v] = min(lowlink[v], lowlink[w])
                elif w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if lowlink[v] == index[v]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                if len(scc) > 1:
                    sccs.append(scc)

        for v in list(graph):
            if v not in index:
                strongconnect(v)
        for scc in sccs:
            members = sorted(scc)
            sites = []
            for (b, a), e in self.lock_edges.items():
                if b in scc and a in scc:
                    sites.append(f"{b} -> {a} at {e['file']}:{e['line']}")
            self.violations.append(Violation(
                "lock-order", "", 0,
                "lock-order cycle among {" + ", ".join(members) + "}: "
                + "; ".join(sorted(sites))))

    # --- thread affinity ---------------------------------------------------

    def check_thread_affinity(self):
        cfg = self.config.get("thread_affinity", {})
        root_patterns = [r["function"] for r in cfg.get("off_thread_roots", [])]
        allow = cfg.get("allow", [])
        affined = self._annotated("merge_thread_only")

        roots = [name for name in self.functions
                 if _match_any(name, root_patterns)]
        parent = {}
        queue = deque()
        for r in roots:
            if r not in parent:
                parent[r] = None
                queue.append(r)
        while queue:
            name = queue.popleft()
            fn = self.functions.get(name)
            if fn is None:
                continue
            for call in fn["calls"]:
                for target in self._overrides(call["callee"]):
                    if target not in parent:
                        parent[target] = name
                        queue.append(target)

        for target in sorted(affined):
            if target not in parent:
                continue
            path = []
            cur = target
            while cur is not None:
                path.insert(0, cur)
                cur = parent[cur]
            root = path[0]
            if any(_match_any(root, [a.get("root", "*")]) and
                   _match_any(target, [a.get("target", "*")]) and
                   ("via" not in a or
                    any(_match_any(node, [a["via"]]) for node in path))
                   for a in allow):
                continue
            fn = self.functions[target]
            self.violations.append(Violation(
                "thread-affinity", fn["file"], fn["line"],
                f"{target} is LM_MERGE_THREAD_ONLY but reachable from "
                f"off-merge-thread entry point {root}; route it through "
                "CallOnMergeThread or allowlist the path with a reason",
                path=path))

    # --- hot path ----------------------------------------------------------

    def check_hot_path(self):
        cfg = self.config.get("hot_path", {})
        allow = cfg.get("allow", [])
        roots = self._annotated("hot_path")

        parent = {}
        queue = deque()
        for r in sorted(roots):
            if r not in parent:
                parent[r] = None
                queue.append(r)
        while queue:
            name = queue.popleft()
            fn = self.functions.get(name)
            if fn is None:
                continue
            for call in fn["calls"]:
                for target in self._overrides(call["callee"]):
                    if target not in parent:
                        parent[target] = name
                        queue.append(target)

        for name in sorted(parent):
            fn = self.functions.get(name)
            if fn is None:
                continue
            for alloc in fn["allocs"]:
                if self._alloc_allowed(name, alloc, allow):
                    continue
                path = []
                cur = name
                while cur is not None:
                    path.insert(0, cur)
                    cur = parent[cur]
                self.violations.append(Violation(
                    "hot-path", fn["file"], alloc["line"],
                    f"heap allocation on the hot path: {alloc['detail']} "
                    f"({alloc['kind']}) in {name}, reachable from "
                    f"LM_HOT_PATH root {path[0]}; hoist/reserve it or "
                    "allowlist the site with a reason",
                    path=path))

    @staticmethod
    def _alloc_allowed(fn_name, alloc, allow):
        for entry in allow:
            if not fnmatch.fnmatchcase(fn_name, entry["function"]):
                continue
            kind = entry.get("kind")
            if kind is None or fnmatch.fnmatchcase(alloc["kind"], kind):
                return True
        return False

    # --- graph emission ----------------------------------------------------

    def graph_json(self):
        cfg = self.config.get("lock_order", {})
        leaf_locks = {e["lock"] for e in cfg.get("leaf_locks", [])}
        declared_ann = {(e["before"], e["after"])
                        for e in self.facts.get("declared_edges", [])}
        declared_cfg = {(e["before"], e["after"])
                        for e in cfg.get("edges", [])}
        declared_cfg |= self._chain_edges(cfg)
        locks = set(leaf_locks)
        for before, after in self.lock_edges:
            locks.add(before)
            locks.add(after)
        for cls in self.classes.values():
            for lock in cls.get("locks", ()):
                locks.add(cls["name"] + "::" + lock)
        edges = []
        for (before, after), e in sorted(self.lock_edges.items()):
            if (before, after) in declared_ann:
                via = "LM_ACQUIRED_AFTER"
            elif (before, after) in declared_cfg:
                via = "analyzer_config.json"
            elif after in leaf_locks:
                via = "leaf"
            else:
                via = "UNDECLARED"
            edges.append({
                "before": before, "after": after, "declared_via": via,
                "site": f"{e['file']}:{e['line']}",
                "function": e["function"],
                "propagated": e["propagated"],
            })
        return {
            "locks": sorted(locks),
            "leaf_locks": sorted(leaf_locks),
            "edges": edges,
        }

    # --- entry point -------------------------------------------------------

    def run(self, checks=("lock-order", "thread-affinity", "hot-path")):
        if "lock-order" in checks:
            self.check_lock_order()
        if "thread-affinity" in checks:
            self.check_thread_affinity()
        if "hot-path" in checks:
            self.check_hot_path()
        return self.violations
