"""Fallback facts frontend for lmerge_analyze: a project-aware C++ lexer.

Produces the same facts JSON as the Clang LibTooling extractor
(tools/analyzer/lmerge_analyze.cc) so tools/analyzer/analysis.py can run
the lock-order / thread-affinity / hot-path checks on hosts without the
Clang development libraries.  The LibTooling backend is authoritative (it
sees the real AST); this frontend is a faithful approximation built on the
same discipline the codebase already enforces:

  - every lock is an `lmerge::Mutex` member acquired through `MutexLock`
    (lint rule raw-mutex), so acquisitions are lexically recognizable;
  - Google style keeps declarations regular enough that member, parameter,
    and local types resolve receivers of method calls;
  - lambdas are modeled as separate anonymous functions (a lambda is a
    potential thread boundary: CallOnMergeThread, EventLoop::Post, thread
    entry points), exactly as the AST backend models them.

Known, documented approximations (see docs/STATIC_ANALYSIS.md):
  - overloads of one function name are merged into one node;
  - calls whose receiver type cannot be resolved produce no edge (counted
    in `unresolved_calls` so the analysis can report coverage);
  - allocation detection matches operator new / the malloc family /
    make_unique / make_shared and growth-method names on containers.
"""

import os
import re

# --- Tokenizer -------------------------------------------------------------

_TOKEN = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"      # identifier
    r"|::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|="
    r"|[0-9][0-9A-Za-z_.+-]*"      # number (loose)
    r"|[{}()\[\];,<>.*&~!?:+\-/%^|=]"
)

LINE_COMMENT = re.compile(r"//[^\n]*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_LIT = re.compile(r"'(?:[^'\\\n]|\\.)*'")
RAW_STRING = re.compile(r'R"([^(]*)\((?:.|\n)*?\)\1"')
PREPROC = re.compile(r"^[ \t]*#[^\n]*(?:\\\n[^\n]*)*", re.MULTILINE)


def _blank(match):
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_noise(text):
    """Blanks comments, string/char literals, and preprocessor directives
    while preserving line numbers."""
    text = RAW_STRING.sub(_blank, text)
    text = BLOCK_COMMENT.sub(_blank, text)
    text = LINE_COMMENT.sub(_blank, text)
    text = STRING_LIT.sub(_blank, text)
    text = CHAR_LIT.sub(_blank, text)
    return PREPROC.sub(_blank, text)


class Tok:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


def tokenize(text):
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


# --- Facts model -----------------------------------------------------------

ANNOTATION_MACROS = {
    "LM_MERGE_THREAD_ONLY": "merge_thread_only",
    "LM_HOT_PATH": "hot_path",
}

GROWTH_METHODS = {
    "push_back", "emplace_back", "emplace", "emplace_hint", "insert",
    "resize", "append", "push_front", "emplace_front",
}

MALLOC_FAMILY = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc"}

# Identifiers that look like calls but are not.
_NOT_CALLS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "decltype", "noexcept", "catch", "assert", "defined", "alignas",
    "static_assert", "new", "delete", "throw", "case",
}

_TYPE_NOISE = {
    "const", "constexpr", "static", "mutable", "volatile", "inline",
    "virtual", "explicit", "typename", "struct", "class", "unsigned",
    "signed", "long", "short", "friend", "extern", "thread_local",
}

_PRIMITIVES = {
    "void", "int", "bool", "char", "float", "double", "auto", "size_t",
    "int8_t", "int16_t", "int32_t", "int64_t", "uint8_t", "uint16_t",
    "uint32_t", "uint64_t", "uintptr_t", "intptr_t", "ssize_t", "wchar_t",
}


class FunctionFacts:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file
        self.line = line
        self.annotations = set()
        self.requires = []      # lock ids from LM_REQUIRES
        self.acquires = []      # {lock, line, held: [lock ids]}
        self.calls = []         # {callee, line, held: [lock ids]}
        self.allocs = []        # {kind, detail, line}
        self.is_lambda = False

    def to_json(self):
        return {
            "name": self.name,
            "file": self.file,
            "line": self.line,
            "annotations": sorted(self.annotations),
            "requires": self.requires,
            "acquires": self.acquires,
            "calls": self.calls,
            "allocs": self.allocs,
            "is_lambda": self.is_lambda,
        }


class ClassFacts:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file
        self.line = line
        self.bases = []
        self.locks = []          # Mutex member names
        self.members = {}        # member name -> raw type string
        self.methods = set()     # unqualified method names declared here

    def to_json(self):
        return {
            "name": self.name,
            "file": self.file,
            "line": self.line,
            "bases": self.bases,
            "locks": self.locks,
            "members": self.members,
            "methods": sorted(self.methods),
        }


class Facts:
    def __init__(self):
        self.functions = {}      # qualified name -> FunctionFacts (merged)
        self.classes = {}        # qualified name -> ClassFacts
        self.declared_edges = []  # {before, after, file, line}
        self.unresolved_calls = 0
        self.files = []

    def function(self, name, file, line):
        fn = self.functions.get(name)
        if fn is None:
            fn = FunctionFacts(name, file, line)
            self.functions[name] = fn
        return fn

    def klass(self, name, file, line):
        cls = self.classes.get(name)
        if cls is None:
            cls = ClassFacts(name, file, line)
            self.classes[name] = cls
        return cls

    def to_json(self):
        return {
            "functions": [f.to_json() for f in self.functions.values()],
            "classes": [c.to_json() for c in self.classes.values()],
            "declared_edges": self.declared_edges,
            "unresolved_calls": self.unresolved_calls,
            "files": self.files,
        }


# --- Parser ----------------------------------------------------------------

class _Scope:
    NAMESPACE = "namespace"
    CLASS = "class"
    FUNCTION = "function"
    BLOCK = "block"
    OTHER = "other"

    def __init__(self, kind, name=None, cls=None, fn=None):
        self.kind = kind
        self.name = name
        self.cls = cls            # ClassFacts for CLASS scopes
        self.fn = fn              # FunctionFacts for FUNCTION scopes
        self.locks = []           # [var name, lock id, active] in this scope
        self.local_types = {}     # var -> raw type (FUNCTION/BLOCK scopes)
        self.local_locks = {}     # function-local Mutex name -> lock id


class FileParser:
    def __init__(self, facts, rel_path, toks):
        self.facts = facts
        self.file = rel_path
        self.toks = toks
        self.i = 0
        self.scopes = []          # stack of _Scope

    # -- scope helpers --

    def _namespace(self):
        return "::".join(
            s.name for s in self.scopes
            if s.kind == _Scope.NAMESPACE and s.name)

    def _class_stack(self):
        return [s for s in self.scopes if s.kind == _Scope.CLASS]

    def _current_class(self):
        stack = self._class_stack()
        return stack[-1].cls if stack else None

    def _current_fn(self):
        for s in reversed(self.scopes):
            if s.kind == _Scope.FUNCTION:
                return s.fn
        return None

    def _qualify_class(self, name):
        """Qualified name for a class declared in the current scope."""
        parts = [s.name for s in self.scopes
                 if s.kind == _Scope.NAMESPACE and s.name]
        parts += [s.cls.name.rsplit("::", 1)[-1] for s in self._class_stack()]
        parts.append(name)
        return "::".join(parts)

    # -- main loop --

    def parse(self):
        toks = self.toks
        n = len(toks)
        head_start = 0           # first token of the current "statement head"
        while self.i < n:
            t = toks[self.i]
            if t.text == "{":
                self._open_brace(head_start, self.i)
                self.i += 1
                head_start = self.i
            elif t.text == "}":
                self._close_brace()
                self.i += 1
                # skip optional `;`
                head_start = self.i
            elif t.text == ";":
                self._statement(head_start, self.i)
                self.i += 1
                head_start = self.i
            else:
                self.i += 1
        return self.facts

    # -- brace classification --

    def _open_brace(self, head_start, brace_pos):
        toks = self.toks
        head = toks[head_start:brace_pos]
        in_fn = self._current_fn() is not None

        if in_fn:
            # Lambda body?  Scan head for a lambda introducer.
            lam = self._lambda_in_head(head)
            if lam is not None:
                self._consume_statement_effects(head_start, brace_pos)
                parent = self._current_fn()
                name = f"{parent.name}::{{lambda:{toks[brace_pos].line}}}"
                fn = self.facts.function(name, self.file, toks[brace_pos].line)
                fn.is_lambda = True
                self.scopes.append(_Scope(_Scope.FUNCTION, fn=fn))
                return
            # Plain block (if/for/while/scope) — process the head as
            # statement-ish content first (e.g. `if (Foo())`).
            self._consume_statement_effects(head_start, brace_pos)
            block = _Scope(_Scope.BLOCK)
            self._register_range_for_var(head, block)
            self.scopes.append(block)
            return

        texts = [t.text for t in head]
        if "namespace" in texts:
            idx = texts.index("namespace")
            name = None
            if idx + 1 < len(texts) and re.match(r"[A-Za-z_]", texts[idx + 1]):
                name = texts[idx + 1]
            self.scopes.append(_Scope(_Scope.NAMESPACE, name=name))
            return

        if ("class" in texts or "struct" in texts) and "enum" not in texts:
            self._open_class(head)
            return

        if "enum" in texts or ("=" in texts and ")" not in texts):
            # enum body or brace initializer at class/namespace scope
            self.scopes.append(_Scope(_Scope.OTHER))
            return

        if ")" in texts:
            self._open_function(head, head_start, brace_pos)
            return

        self.scopes.append(_Scope(_Scope.OTHER))

    @staticmethod
    def _register_range_for_var(head, block):
        """`for (Type* var : range)` — record var's type in the new block
        scope (the classic 3-clause for has `;` and is skipped)."""
        texts = [t.text for t in head]
        if "for" not in texts or ";" in texts:
            return
        try:
            open_idx = texts.index("(", texts.index("for"))
        except ValueError:
            return
        depth = 0
        colon = None
        for k in range(open_idx, len(texts)):
            if texts[k] in ("(", "<", "["):
                depth += 1
            elif texts[k] in (")", ">", "]"):
                depth -= 1
            elif texts[k] == ":" and depth == 1:
                colon = k
                break
        if colon is None:
            return
        ids = [tx for tx in texts[open_idx + 1:colon]
               if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx)
               and tx not in _TYPE_NOISE]
        if len(ids) >= 2 and ids[0] != "auto":
            block.local_types[ids[-1]] = " ".join(ids[:-1])

    def _lambda_in_head(self, head):
        for k, t in enumerate(head):
            if t.text != "[":
                continue
            prev = head[k - 1].text if k > 0 else "("
            if prev in ("(", ",", "{", "=", "return", ";", ":", "&&",
                        "||", "<", ">"):
                return k
        return None

    def _open_class(self, head):
        texts = [t.text for t in head]
        kw = "class" if "class" in texts else "struct"
        idx = texts.index(kw)
        # name is the identifier after the keyword (skip attribute macros,
        # which are ALL_CAPS with args — e.g. LM_CAPABILITY("mutex")).
        name = None
        j = idx + 1
        while j < len(texts):
            tx = texts[j]
            if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx):
                if tx.isupper() or tx in ("final", "alignas"):
                    # macro/attribute: skip it and a following (...) group
                    j += 1
                    if j < len(texts) and texts[j] == "(":
                        depth = 0
                        while j < len(texts):
                            if texts[j] == "(":
                                depth += 1
                            elif texts[j] == ")":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                        j += 1
                    continue
                # qualified definition: `struct LoopbackListener::State {`
                parts = [tx]
                while j + 2 < len(texts) and texts[j + 1] == "::" and \
                        re.match(r"[A-Za-z_][A-Za-z0-9_]*$", texts[j + 2]):
                    parts.append(texts[j + 2])
                    j += 2
                name = "::".join(parts)
                break
            j += 1
        if name is None:
            self.scopes.append(_Scope(_Scope.OTHER))
            return
        qual = self._qualify_class(name)
        cls = self.facts.klass(qual, self.file, head[0].line if head else 0)
        # bases: identifiers after `:` (skipping public/protected/private)
        if ":" in texts[j:]:
            cidx = j + texts[j:].index(":")
            base_toks = texts[cidx + 1:]
            depth = 0
            cur = []
            for tx in base_toks:
                if tx in ("<",):
                    depth += 1
                elif tx in (">",):
                    depth -= 1
                elif depth == 0 and tx == ",":
                    cur = []
                elif depth == 0 and re.match(r"[A-Za-z_]", tx) and \
                        tx not in ("public", "protected", "private",
                                   "virtual"):
                    cur.append(tx)
                    if cur:
                        base = cur[-1]
                        if base not in cls.bases:
                            cls.bases.append(base)
        self.scopes.append(_Scope(_Scope.CLASS, cls=cls))

    def _open_function(self, head, head_start, brace_pos):
        """A `)`-containing head followed by `{` outside a function body:
        a function definition (possibly with ctor init list)."""
        texts = [t.text for t in head]
        # Find the parameter list: the parenthesized group whose opener
        # matches the function name position.  Take the FIRST `(` at depth 0
        # scanning left-to-right, its preceding identifier chain is the name.
        depth = 0
        open_idx = None
        for k, tx in enumerate(texts):
            if tx == "(":
                open_idx = k
                break
        if open_idx is None or open_idx == 0:
            self.scopes.append(_Scope(_Scope.OTHER))
            return
        # `operator()` etc: skip operators — name them operator.
        name_parts = []
        k = open_idx - 1
        # collect trailing identifier chain  A :: B :: [~]name
        while k >= 0:
            tx = texts[k]
            if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx):
                if k >= 1 and texts[k - 1] == "~":
                    name_parts.insert(0, "~" + tx)
                    k -= 1
                else:
                    name_parts.insert(0, tx)
                if k >= 2 and texts[k - 1] == "::":
                    k -= 2
                    continue
            break
        if not name_parts or name_parts[-1].lstrip("~") in _PRIMITIVES:
            self.scopes.append(_Scope(_Scope.OTHER))
            return

        cls = self._current_class()
        ns = self._namespace()
        if len(name_parts) > 1:
            # Out-of-class definition: Class::Method (resolve class against
            # known classes to get full qualification).
            method = name_parts[-1]
            holder = "::".join(name_parts[:-1])
            qual_holder = self._resolve_class_name(holder)
            if qual_holder:
                qname = qual_holder + "::" + method
                holder_cls = self.facts.classes.get(qual_holder)
                if holder_cls is not None:
                    holder_cls.methods.add(method)
            else:
                qname = (ns + "::" if ns else "") + holder + "::" + method
        elif cls is not None:
            qname = cls.name + "::" + name_parts[0]
            cls.methods.add(name_parts[0])
        else:
            qname = (ns + "::" if ns else "") + name_parts[0]
            # Keep per-file identities distinct for symbols with internal
            # linkage: each tool's `main` and every anonymous-namespace
            # helper would otherwise merge into one whole-repo node.
            if name_parts[0] == "main" or self._in_anonymous_namespace():
                qname = f"{qname}@{self.file}"

        fn = self.facts.function(qname, self.file, head[0].line)
        self._harvest_signature(fn, head, texts, open_idx)
        scope = _Scope(_Scope.FUNCTION, fn=fn)
        scope.local_types = self._param_types(texts, open_idx)
        self.scopes.append(scope)

    def _harvest_signature(self, fn, head, texts, open_idx):
        """Annotations and LM_REQUIRES from a definition head."""
        for k, tx in enumerate(texts):
            if tx in ANNOTATION_MACROS:
                fn.annotations.add(ANNOTATION_MACROS[tx])
            if tx == "LM_REQUIRES" and k + 1 < len(texts) and \
                    texts[k + 1] == "(":
                group = self._paren_group(texts, k + 1)
                for expr in self._split_top_commas(group):
                    lock = self._resolve_lock_expr(expr, head[0].line)
                    if lock and lock not in fn.requires:
                        fn.requires.append(lock)

    def _param_types(self, texts, open_idx):
        """Best-effort parameter name -> type map."""
        depth = 0
        end = open_idx
        for k in range(open_idx, len(texts)):
            if texts[k] == "(":
                depth += 1
            elif texts[k] == ")":
                depth -= 1
                if depth == 0:
                    end = k
                    break
        params = {}
        group = texts[open_idx + 1:end]
        # split at top-level commas
        depth = 0
        cur = []
        chunks = []
        for tx in group:
            if tx in ("<", "(", "["):
                depth += 1
            elif tx in (">", ")", "]"):
                depth -= 1
            if tx == "," and depth == 0:
                chunks.append(cur)
                cur = []
            else:
                cur.append(tx)
        if cur:
            chunks.append(cur)
        for chunk in chunks:
            # drop default value
            if "=" in chunk:
                chunk = chunk[:chunk.index("=")]
            ids = [tx for tx in chunk if re.match(r"[A-Za-z_]", tx)
                   and tx not in _TYPE_NOISE]
            if len(ids) >= 2:
                params[ids[-1]] = " ".join(ids[:-1])
        return params

    def _close_brace(self):
        if self.scopes:
            self.scopes.pop()

    # -- statements ---------------------------------------------------------

    def _statement(self, start, end):
        toks = self.toks
        if start >= end:
            return
        if self._current_fn() is not None:
            self._consume_statement_effects(start, end)
            return
        cls = self._current_class()
        if cls is not None:
            self._class_member_decl(start, end)
            return
        # namespace-scope declaration: record free-function decls minimally
        self._maybe_function_decl(start, end)

    def _class_member_decl(self, start, end):
        toks = self.toks
        texts = [t.text for t in toks[start:end]]
        # access-specifier labels glue onto the following declaration
        # (statements split on `;`/braces, not on `:`): strip them.
        while len(texts) >= 2 and \
                texts[0] in ("public", "private", "protected") and \
                texts[1] == ":":
            texts = texts[2:]
            start += 2
        if not texts:
            return
        cls = self._current_class()
        # method declaration (has parens): harvest annotations/requires so
        # header decls annotate the merged function node.
        if "(" in texts and not texts[0] in ("using", "typedef", "friend"):
            open_idx = texts.index("(")
            k = open_idx - 1
            tok = texts[k] if k >= 0 else ""
            if re.match(r"[A-Za-z_~][A-Za-z0-9_]*$", tok) \
                    and tok not in _TYPE_NOISE \
                    and tok not in _PRIMITIVES \
                    and not tok.startswith("LM_"):
                method = tok
                cls.methods.add(method)
                qname = cls.name + "::" + method
                fn = self.facts.function(qname, self.file,
                                         toks[start].line)
                self._harvest_signature(fn, toks[start:end], texts, open_idx)
                return
            if not (tok.startswith("LM_") or tok in _PRIMITIVES):
                # operator overloads etc. — not a data member either
                return
            # `Mutex m_ LM_ACQUIRED_AFTER(x)` / `std::function<void()> cb_`:
            # the paren belongs to an annotation macro or a function type;
            # fall through to the data-member parse.
        if texts[0] in ("using", "typedef", "friend", "public", "private",
                        "protected", "template", "enum", "static_assert"):
            return
        # data member: `Type name_ [LM_GUARDED_BY(...)] [LM_ACQUIRED_AFTER(x)]`
        # find the declared name: last identifier before the first
        # annotation macro / `=` / `{` / end.
        stop = len(texts)
        for mark in ("LM_GUARDED_BY", "LM_PT_GUARDED_BY", "LM_ACQUIRED_AFTER",
                     "LM_ACQUIRED_BEFORE", "=", "{"):
            if mark in texts:
                stop = min(stop, texts.index(mark))
        decl = texts[:stop]
        ids = [tx for tx in decl if re.match(r"[A-Za-z_]", tx)
               and tx not in _TYPE_NOISE]
        if len(ids) < 2:
            return
        name = ids[-1]
        type_str = " ".join(ids[:-1])
        cls.members[name] = type_str
        if ids[0] == "Mutex" or type_str.endswith("Mutex"):
            if name not in cls.locks:
                cls.locks.append(name)
            # declared ordering edges
            for k, tx in enumerate(texts):
                if tx == "LM_ACQUIRED_AFTER" and k + 1 < len(texts) and \
                        texts[k + 1] == "(":
                    expr = self._paren_group(texts, k + 1)
                    before = self._resolve_lock_expr(expr, toks[start].line)
                    if before:
                        self.facts.declared_edges.append({
                            "before": before,
                            "after": cls.name + "::" + name,
                            "file": self.file,
                            "line": toks[start].line,
                        })

    def _maybe_function_decl(self, start, end):
        pass  # free-function decls carry no facts we need beyond defs

    # -- function-body effects ----------------------------------------------

    def _consume_statement_effects(self, start, end):
        """Scan tokens [start, end) inside a function body for lock
        acquisitions, local declarations, calls, and allocation sites."""
        toks = self.toks
        texts = [t.text for t in toks[start:end]]
        fn = self._current_fn()
        if fn is None or not texts:
            return

        # MutexLock guard(expr)  /  MutexLock guard{expr}
        if texts[0] == "MutexLock" and len(texts) >= 3:
            var = texts[1]
            if texts[2] in ("(", "{"):
                expr = self._paren_group(texts, 2)
                lock = self._resolve_lock_expr(expr, toks[start].line)
                held = self._held_locks()
                fn.acquires.append({
                    "lock": lock or "::".join(expr),
                    "resolved": lock is not None,
                    "line": toks[start].line,
                    "held": held,
                })
                scope = self.scopes[-1] if self.scopes else None
                if scope is not None:
                    scope.locks.append([var, lock or "?", True])
            return

        # function-local mutex declaration: `Mutex name;` (tool mains keep
        # stats under a local mutex).  Lock id is qualified by the function.
        decl = texts[2:] if texts[:2] == ["lmerge", "::"] else texts
        if len(decl) == 2 and decl[0] == "Mutex" and \
                re.match(r"[A-Za-z_][A-Za-z0-9_]*$", decl[1]):
            scope = self.scopes[-1] if self.scopes else None
            if scope is not None:
                scope.local_locks[decl[1]] = fn.name + "::" + decl[1]
            return

        # lock.Unlock() / lock.Lock() toggles on a guard variable
        if len(texts) >= 3 and texts[1] == "." and \
                texts[2] in ("Unlock", "Lock"):
            for s in reversed(self.scopes):
                if s.kind not in (_Scope.FUNCTION, _Scope.BLOCK):
                    break
                for entry in s.locks:
                    if entry[0] == texts[0]:
                        entry[2] = texts[2] == "Lock"

        # local declarations:  Type name = / Type name( / Type& name =
        self._maybe_local_decl(texts)

        # allocations + calls
        self._scan_calls_and_allocs(start, end)

    def _maybe_local_decl(self, texts):
        scope = self.scopes[-1] if self.scopes else None
        if scope is None or scope.kind not in (_Scope.FUNCTION, _Scope.BLOCK):
            return
        # pattern: leading identifier chain (type tokens incl. templates)
        # then identifier then one of = ( ; {
        if not re.match(r"[A-Za-z_]", texts[0]) or texts[0] in _NOT_CALLS:
            return
        # find `=` at depth 0
        depth = 0
        eq = None
        for k, tx in enumerate(texts):
            if tx in ("<", "(", "["):
                depth += 1
            elif tx in (">", ")", "]"):
                depth -= 1
            elif tx == "=" and depth == 0:
                eq = k
                break
        if eq is None or eq < 2:
            return
        name = texts[eq - 1]
        if not re.match(r"[A-Za-z_][A-Za-z0-9_]*$", name):
            return
        ids = [tx for tx in texts[:eq - 1] if re.match(r"[A-Za-z_]", tx)
               and tx not in _TYPE_NOISE]
        if not ids or ids[-1] == "auto" or "auto" in ids:
            # `auto x = make_shared<ServeState>()` / `auto& s = *shards_[i]`:
            # infer from the initializer — first identifier that names a
            # project class (template arg) or whose known type maps to one.
            for tx in texts[eq + 1:]:
                if not re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx) or \
                        tx in _TYPE_NOISE:
                    continue
                cls_name = self._resolve_class_name(tx)
                if cls_name is None:
                    var_type = self._lookup_var_type(tx)
                    cls_name = self._type_to_class(var_type) \
                        if var_type else None
                if cls_name:
                    scope.local_types[name] = cls_name
                    return
            return
        scope.local_types[name] = " ".join(ids)

    def _scan_calls_and_allocs(self, start, end):
        toks = self.toks
        texts = [t.text for t in toks[start:end]]
        fn = self._current_fn()
        held = self._held_locks()

        k = 0
        while k < len(texts):
            tx = texts[k]
            line = toks[start + k].line

            # operator new
            if tx == "new":
                what = texts[k + 1] if k + 1 < len(texts) else "?"
                fn.allocs.append({"kind": "new", "detail": f"new {what}",
                                  "line": line})
                # `new T(...)` also calls T's constructor
                ctor = self._resolve_class_name(what)
                if ctor:
                    fn.calls.append({
                        "callee": ctor + "::" + ctor.rsplit("::", 1)[-1],
                        "line": line, "held": held})
                k += 1
                continue

            if tx in MALLOC_FAMILY and k + 1 < len(texts) and \
                    texts[k + 1] == "(":
                fn.allocs.append({"kind": "malloc", "detail": tx,
                                  "line": line})
                k += 1
                continue

            if tx in ("make_unique", "make_shared") and k + 1 < len(texts) \
                    and texts[k + 1] == "<":
                arg = texts[k + 2] if k + 2 < len(texts) else "?"
                fn.allocs.append({"kind": "new",
                                  "detail": f"{tx}<{arg}>", "line": line})
                ctor = self._resolve_class_name(arg)
                if ctor:
                    fn.calls.append({
                        "callee": ctor + "::" + ctor.rsplit("::", 1)[-1],
                        "line": line, "held": held})
                k += 1
                continue

            if tx == "to_string" and k + 1 < len(texts) and \
                    texts[k + 1] == "(":
                fn.allocs.append({"kind": "string", "detail": "to_string",
                                  "line": line})
                k += 1
                continue

            # method or free call: identifier followed by `(`
            if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx) and \
                    tx not in _NOT_CALLS and k + 1 < len(texts) and \
                    texts[k + 1] == "(":
                prev = texts[k - 1] if k > 0 else None
                if prev in (".", "->"):
                    recv = texts[k - 2] if k >= 2 else None
                    if tx in GROWTH_METHODS:
                        fn.allocs.append({
                            "kind": "container-growth",
                            "detail": f"{recv}.{tx}" if recv else tx,
                            "line": line})
                    callee = self._resolve_method_call(recv, tx,
                                                      k, texts)
                    if callee:
                        fn.calls.append({"callee": callee, "line": line,
                                         "held": held})
                    elif self._is_project_method(tx):
                        self.facts.unresolved_calls += 1
                elif prev == "::":
                    # qualified: collect chain
                    chain = [tx]
                    j = k - 1
                    while j >= 1 and texts[j] == "::" and \
                            re.match(r"[A-Za-z_]", texts[j - 1]):
                        chain.insert(0, texts[j - 1])
                        j -= 2
                    callee = self._resolve_qualified_call(chain)
                    if callee:
                        fn.calls.append({"callee": callee, "line": line,
                                         "held": held})
                else:
                    callee = self._resolve_plain_call(tx)
                    if callee:
                        fn.calls.append({"callee": callee, "line": line,
                                         "held": held})
            k += 1

    # -- resolution helpers ---------------------------------------------------

    @staticmethod
    def _split_top_commas(tokens):
        depth = 0
        out = [[]]
        for tx in tokens:
            if tx in ("<", "(", "["):
                depth += 1
            elif tx in (">", ")", "]"):
                depth -= 1
            if tx == "," and depth == 0:
                out.append([])
            else:
                out[-1].append(tx)
        return [chunk for chunk in out if chunk]

    def _paren_group(self, texts, open_idx):
        """Token texts inside the group opened at texts[open_idx]."""
        closer = {"(": ")", "{": "}"}[texts[open_idx]]
        opener = texts[open_idx]
        depth = 0
        out = []
        for tx in texts[open_idx:]:
            if tx == opener:
                depth += 1
                if depth == 1:
                    continue
            elif tx == closer:
                depth -= 1
                if depth == 0:
                    break
            out.append(tx)
        return out

    def _in_anonymous_namespace(self):
        return any(s.kind == _Scope.NAMESPACE and s.name is None
                   for s in self.scopes)

    def _held_locks(self):
        """Locks held in the innermost function only: a lambda does NOT
        inherit its encloser's guards (it may run on another thread)."""
        held = []
        for s in reversed(self.scopes):
            for _var, lock, active in s.locks:
                if active and lock != "?" and lock not in held:
                    held.append(lock)
            if s.kind == _Scope.FUNCTION:
                break
        # entry-point REQUIRES contributes at analysis time, not here.
        return held

    def _unique_method_owner(self, method):
        owners = [c.name for c in self.facts.classes.values()
                  if method in c.methods]
        if len(owners) == 1:
            return owners[0] + "::" + method
        return None

    def _lookup_var_type(self, name):
        # Walk past FUNCTION scopes: a lambda sees its encloser's locals
        # (captures are lexically the same variables).
        for s in reversed(self.scopes):
            if s.kind in (_Scope.FUNCTION, _Scope.BLOCK):
                if name in s.local_types:
                    return s.local_types[name]
        cls = self._enclosing_class_for_fn()
        while cls is not None:
            if name in cls.members:
                return cls.members[name]
            cls = self._base_class(cls)
        return None

    def _enclosing_class_for_fn(self):
        fn = self._current_fn()
        if fn is None:
            return None
        qual = fn.name
        while "::" in qual:
            qual = qual.rsplit("::", 1)[0]
            if qual in self.facts.classes:
                return self.facts.classes[qual]
        return None

    def _base_class(self, cls):
        for base in cls.bases:
            resolved = self._resolve_class_name(base)
            if resolved and resolved in self.facts.classes:
                return self.facts.classes[resolved]
        return None

    def _resolve_class_name(self, name):
        """Maps a (possibly partially qualified) class name to a known
        qualified class, preferring the current namespace/class nesting."""
        if name in self.facts.classes:
            return name
        # try suffix match: any known class whose qualified name ends with
        # ::name (or ::A::B for A::B)
        suffix = "::" + name
        candidates = [c for c in self.facts.classes if c.endswith(suffix)]
        if len(candidates) == 1:
            return candidates[0]
        if candidates:
            # prefer a class nested in the enclosing class chain (e.g.
            # `Shard` inside PartitionedMerger means PartitionedMerger::Shard,
            # not PayloadStore::Shard), then the current namespace; a still-
            # ambiguous name resolves to nothing rather than the wrong class.
            encl = self._enclosing_class_for_fn() or self._current_class()
            while encl is not None:
                if encl.name + suffix in candidates:
                    return encl.name + suffix
                encl = self._base_class(encl)
            ns = self._namespace()
            ns_hits = [c for c in candidates
                       if ns and c.startswith(ns + "::")]
            if len(ns_hits) == 1:
                return ns_hits[0]
        return None

    def _type_to_class(self, type_str):
        """Extracts the project class a declaration type refers to: the
        last identifier in the type string that names a known class."""
        if type_str is None:
            return None
        found = None
        for tx in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", type_str):
            resolved = self._resolve_class_name(tx)
            if resolved:
                found = resolved
        return found

    def _resolve_lock_expr(self, expr_tokens, line):
        """Resolves the argument of MutexLock(...) / LM_REQUIRES(...) /
        LM_ACQUIRED_AFTER(...) to a canonical lock id `Class::member`."""
        ids = [tx for tx in expr_tokens
               if re.match(r"[A-Za-z_][A-Za-z0-9_]*$", tx)]
        if not ids:
            return None
        member = ids[-1]
        if len(ids) == 1:
            # function-local mutex (incl. one captured by a lambda)?
            for s in reversed(self.scopes):
                if member in s.local_locks:
                    return s.local_locks[member]
            # bare member: search enclosing class chain, then any class
            # scope we are lexically inside (for decl-context macros).
            cls = self._enclosing_class_for_fn() or self._current_class()
            while cls is not None:
                if member in cls.locks or member in cls.members:
                    return cls.name + "::" + member
                cls = self._base_class(cls)
            return self._unique_lock_owner(member)
        # receiver chain: resolve the first identifier's type, then walk.
        recv = ids[0]
        type_str = self._lookup_var_type(recv)
        cls_name = self._type_to_class(type_str) if type_str else None
        if cls_name is None:
            cls_name = self._resolve_class_name(recv)  # static-ish Class::m
        if cls_name:
            cur = self.facts.classes.get(cls_name)
            for step in ids[1:-1]:
                if cur is None:
                    break
                step_type = cur.members.get(step)
                nxt = self._type_to_class(step_type) if step_type else None
                cur = self.facts.classes.get(nxt) if nxt else None
            if cur is not None and (member in cur.locks or
                                    member in cur.members):
                return cur.name + "::" + member
        return self._unique_lock_owner(member)

    def _unique_lock_owner(self, member):
        owners = [c.name for c in self.facts.classes.values()
                  if member in c.locks]
        if len(owners) == 1:
            return owners[0] + "::" + member
        return None

    def _is_project_method(self, name):
        return any(name in c.methods for c in self.facts.classes.values())

    def _resolve_method_call(self, recv, method, k, texts):
        if recv is None or not re.match(r"[A-Za-z_]", recv or ""):
            # receiver is an expression; try unique method owner
            return self._unique_method_owner(method)
        if recv == "this":
            cls = self._enclosing_class_for_fn()
            return self._method_in_chain(cls, method)
        type_str = self._lookup_var_type(recv)
        cls_name = self._type_to_class(type_str) if type_str else None
        if cls_name:
            cls = self.facts.classes.get(cls_name)
            hit = self._method_in_chain(cls, method)
            if hit:
                return hit
        return self._unique_method_owner(method)

    def _method_in_chain(self, cls, method):
        while cls is not None:
            if method in cls.methods:
                return cls.name + "::" + method
            cls = self._base_class(cls)
        return None

    def _resolve_plain_call(self, name):
        cls = self._enclosing_class_for_fn()
        hit = self._method_in_chain(cls, name)
        if hit:
            return hit
        ns = self._namespace()
        ns_name = (ns + "::" + name) if ns else name
        for cand in (f"{ns_name}@{self.file}", f"{name}@{self.file}",
                     ns_name, name, "lmerge::" + name):
            if cand in self.facts.functions:
                return cand
        return None

    def _resolve_qualified_call(self, chain):
        holder = "::".join(chain[:-1])
        method = chain[-1]
        cls_name = self._resolve_class_name(holder)
        if cls_name:
            cls = self.facts.classes.get(cls_name)
            hit = self._method_in_chain(cls, method)
            if hit:
                return hit
            return cls_name + "::" + method
        full = "::".join(chain)
        if full in self.facts.functions:
            return full
        if "lmerge::" + full in self.facts.functions:
            return "lmerge::" + full
        return None


# --- Entry points ----------------------------------------------------------

def extract_file(facts, root, rel_path):
    path = os.path.join(root, rel_path)
    with open(path, encoding="utf-8") as f:
        text = f.read()
    toks = tokenize(strip_noise(text))
    facts.files.append(rel_path)
    FileParser(facts, rel_path, toks).parse()


def extract_tree(root, rel_paths):
    """Two passes: the first builds the class/member/method tables, the
    second resolves lock expressions and call receivers against them."""
    facts = Facts()
    token_cache = {}
    for rel in rel_paths:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            token_cache[rel] = tokenize(strip_noise(f.read()))
    # pass 1: declarations only (functions still parsed; resolution tables
    # fill up as we go).
    for rel in rel_paths:
        facts.files.append(rel)
        FileParser(facts, rel, token_cache[rel]).parse()
    # pass 2: reparse with the complete class table so early files resolve
    # against classes declared later.
    facts2 = Facts()
    facts2.classes = facts.classes
    for cls in facts2.classes.values():
        cls.methods = set(cls.methods)
    for rel in rel_paths:
        facts2.files.append(rel)
        FileParser(facts2, rel, token_cache[rel]).parse()
    return facts2
