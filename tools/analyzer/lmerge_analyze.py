#!/usr/bin/env python3
"""lmerge_analyze — whole-program lock-order / thread-affinity / hot-path
checker for the lmerge tree.

Two interchangeable frontends produce the same facts JSON:

  * the Clang LibTooling extractor (tools/analyzer/lmerge_analyze.cc),
    built when CMake finds Clang dev libraries (CI's static-analysis job);
  * the project-aware lexer fallback (tools/analyzer/extract.py), which
    needs only Python and understands this repo's idioms (lmerge::Mutex,
    MutexLock guards, the LM_* macro family).

Both feed tools/analyzer/analysis.py, which owns the actual checks, so a
violation is a violation regardless of which frontend found the facts.

Usage:
  lmerge_analyze.py [--root DIR] [--config FILE] [--checks a,b]
                    [--backend auto|native|fallback] [--native-bin PATH]
                    [--graph-out FILE] [--facts-out FILE]
  lmerge_analyze.py --self-test [--backend ...]

Exit codes (same contract as scripts/lint.py): 0 clean, 1 violations
found, 2 internal error.
"""

import argparse
import json
import os
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import analysis   # noqa: E402
import extract    # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
DEFAULT_CONFIG = os.path.join(REPO_ROOT, "tools", "analyzer",
                              "analyzer_config.json")
FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "analyzer", "fixtures")

# Directories whose sources define the contracts (bench/ and examples/ are
# clients of the public API and never hold engine locks; scripts/lint.py
# covers them for style rules).
SCAN_DIRS = ("src", "tools")
SOURCE_EXTENSIONS = (".cc", ".h")


def collect_sources(root, dirs):
    rel_paths = []
    for top in dirs:
        top_abs = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames[:] = [d for d in dirnames
                           if d not in ("build", ".git", "__pycache__")]
            for fname in sorted(filenames):
                if fname.endswith(SOURCE_EXTENSIONS):
                    rel_paths.append(os.path.relpath(
                        os.path.join(dirpath, fname), root))
    return sorted(rel_paths)


def find_native_bin(explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in (
        os.path.join(REPO_ROOT, "build", "tools", "analyzer",
                     "lmerge_analyze_extract"),
        os.path.join(REPO_ROOT, "build-clang", "tools", "analyzer",
                     "lmerge_analyze_extract"),
    ):
        if os.path.isfile(cand):
            return cand
    return None


def run_native(native_bin, root, rel_paths, extra_cc_args=None):
    """Runs the LibTooling extractor over `rel_paths` (it emits the same
    facts JSON schema as the fallback).  Headers ride along with the TUs
    that include them, so only .cc files are passed."""
    sources = [os.path.join(root, p) for p in rel_paths
               if p.endswith(".cc")]
    cmd = [native_bin, "--root", root]
    cmd += sources
    cmd += ["--", "-std=c++20", "-I" + os.path.join(root, "src")]
    cmd += extra_cc_args or []
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"native extractor failed ({proc.returncode}):\n{proc.stderr}")
    return json.loads(proc.stdout)


def run_fallback(root, rel_paths):
    return extract.extract_tree(root, rel_paths).to_json()


def load_config(path):
    if path and os.path.isfile(path):
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    return {}


def get_facts(args, root, rel_paths):
    backend = args.backend
    native_bin = find_native_bin(args.native_bin)
    if backend == "native" and native_bin is None:
        raise RuntimeError("--backend native requested but no "
                           "lmerge_analyze_extract binary found (build with "
                           "-DLMERGE_BUILD_ANALYZER=ON under Clang)")
    if backend == "auto":
        backend = "native" if native_bin else "fallback"
    if backend == "native":
        return run_native(native_bin, root, rel_paths), "native"
    return run_fallback(root, rel_paths), "fallback"


def analyze_tree(args):
    root = os.path.abspath(args.root)
    rel_paths = collect_sources(root, SCAN_DIRS)
    facts, backend = get_facts(args, root, rel_paths)
    config = load_config(args.config)
    checks = tuple(args.checks.split(",")) if args.checks else (
        "lock-order", "thread-affinity", "hot-path")

    eng = analysis.Analyzer(facts, config)
    violations = eng.run(checks)

    if args.facts_out:
        with open(args.facts_out, "w", encoding="utf-8") as fh:
            json.dump(facts, fh, indent=1, sort_keys=True)
    if args.graph_out:
        with open(args.graph_out, "w", encoding="utf-8") as fh:
            json.dump(eng.graph_json(), fh, indent=1, sort_keys=True)

    n_fn = len(facts["functions"])
    n_edges = len(eng.lock_edges)
    print(f"lmerge_analyze: backend={backend} files={len(facts['files'])} "
          f"functions={n_fn} lock_edges={n_edges} checks={','.join(checks)}")
    if violations:
        for v in violations:
            print(v.render())
        print(f"lmerge_analyze: {len(violations)} violation(s)")
        return 1
    print("lmerge_analyze: clean")
    return 0


# --- self test --------------------------------------------------------------

def self_test(args):
    """Every seeded-violation fixture must be rejected by its named check,
    and the `clean` fixture must pass all checks.  Runs whichever backends
    are available so the LibTooling and fallback frontends are held to the
    same contract."""
    if not os.path.isdir(FIXTURE_DIR):
        print(f"lmerge_analyze: fixture dir missing: {FIXTURE_DIR}",
              file=sys.stderr)
        return 2

    backends = []
    native_bin = find_native_bin(args.native_bin)
    if args.backend in ("auto", "fallback"):
        backends.append(("fallback", None))
    if native_bin and args.backend in ("auto", "native"):
        backends.append(("native", native_bin))
    if args.backend == "native" and not native_bin:
        print("lmerge_analyze: --backend native but no binary found",
              file=sys.stderr)
        return 2

    failures = []
    n_cases = 0
    for name in sorted(os.listdir(FIXTURE_DIR)):
        fdir = os.path.join(FIXTURE_DIR, name)
        if not os.path.isdir(fdir):
            continue
        expect_path = os.path.join(fdir, "expect.json")
        with open(expect_path, encoding="utf-8") as fh:
            expect = json.load(fh)
        config = load_config(os.path.join(fdir, "analyzer_config.json"))
        rel_paths = sorted(
            p for p in os.listdir(fdir) if p.endswith(SOURCE_EXTENSIONS))
        for backend, nbin in backends:
            n_cases += 1
            try:
                if backend == "native":
                    facts = run_native(
                        nbin, fdir, rel_paths,
                        extra_cc_args=["-I" + os.path.join(REPO_ROOT, "src")])
                else:
                    facts = run_fallback(fdir, rel_paths)
                violations = analysis.Analyzer(facts, config).run()
            except Exception as exc:  # fixture must not crash the analyzer
                failures.append(f"{name} [{backend}]: raised {exc!r}")
                continue
            failures.extend(
                f"{name} [{backend}]: {msg}"
                for msg in _check_expectation(expect, violations))

    for f in failures:
        print(f"SELF-TEST FAIL: {f}", file=sys.stderr)
    if failures:
        return 2
    print(f"lmerge_analyze --self-test: {n_cases} fixture cases passed "
          f"({', '.join(b for b, _ in backends)})")
    return 0


def _check_expectation(expect, violations):
    """expect.json: {"clean": true} or
    {"check": "...", "must_match": "substr"[, "min_count": N]}."""
    msgs = []
    if expect.get("clean"):
        if violations:
            msgs.append("expected clean but got: "
                        + "; ".join(v.render() for v in violations))
        return msgs
    check = expect["check"]
    want = expect.get("must_match", "")
    min_count = expect.get("min_count", 1)
    hits = [v for v in violations
            if v.check == check and want in v.render()]
    if len(hits) < min_count:
        got = "; ".join(v.render() for v in violations) or "(no violations)"
        msgs.append(f"expected >= {min_count} '{check}' violation(s) "
                    f"matching '{want}', got: {got}")
    return msgs


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=REPO_ROOT)
    ap.add_argument("--config", default=DEFAULT_CONFIG)
    ap.add_argument("--checks", default=None,
                    help="comma list: lock-order,thread-affinity,hot-path")
    ap.add_argument("--backend", choices=("auto", "native", "fallback"),
                    default="auto")
    ap.add_argument("--native-bin", default=None)
    ap.add_argument("--graph-out", default=None,
                    help="write the discovered lock acquisition graph here")
    ap.add_argument("--facts-out", default=None)
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    try:
        if args.self_test:
            return self_test(args)
        return analyze_tree(args)
    except RuntimeError as exc:
        print(f"lmerge_analyze: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
