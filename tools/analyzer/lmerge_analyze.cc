// lmerge_analyze_extract: Clang LibTooling frontend for the lmerge
// whole-program concurrency analyzer (tools/analyzer/lmerge_analyze.py).
//
// Emits the same facts JSON as the bundled lexer fallback (extract.py):
// per-function lock acquisitions with the held-set at each site, call
// edges, allocation sites, LM_* annotations read from the AST's
// `annotate` attributes, per-class mutex members, and the LM_ACQUIRED_AFTER
// declared lock-order edges.  The Python driver feeds either backend's
// output to the shared analysis engine (analysis.py), so the checks are
// identical — this frontend is just a sound replacement for the lexer's
// heuristics when clang dev libraries are available (the CI
// static-analysis job; the container fallback has none).
//
// Invocation (matches lmerge_analyze.py run_native):
//   lmerge_analyze_extract --root <repo> a.cc b.cc ... -- -std=c++20 -Isrc
//
// Deliberate parity choices with extract.py:
//   * Lambdas become synthetic functions `Parent::{lambda:LINE}` with NO
//     call edge from the parent: a lambda handed to CallOnMergeThread /
//     EventLoop::Post runs on another thread, so the severed edge is the
//     thread boundary.  (Same-thread immediate invocation is rare enough
//     here that the over-severing only loses coverage, never soundness of
//     the lock-order graph — acquisitions inside the lambda still count.)
//   * Internal-linkage functions (file statics, anon namespaces, main)
//     are keyed `name@relative/path.cc` so same-named tool mains collide
//     neither with each other nor with exported symbols.
//   * Allocation kinds: "new" (operator new / make_unique / make_shared),
//     "malloc" (C family), "container-growth" (push_back & friends),
//     "string" (std::to_string) — matching extract.py's taxonomy so the
//     hot_path allowlist applies to both backends unchanged.

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/JSON.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;

namespace {

llvm::cl::OptionCategory ToolCategory("lmerge_analyze_extract");
llvm::cl::opt<std::string> RootOpt(
    "root", llvm::cl::desc("repository root; facts use paths relative to it"),
    llvm::cl::Required, llvm::cl::cat(ToolCategory));

const std::set<std::string> kGrowthMethods = {
    "push_back", "emplace_back", "emplace",       "emplace_hint", "insert",
    "resize",    "append",       "push_front",    "emplace_front"};
const std::set<std::string> kMallocFamily = {"malloc", "calloc", "realloc",
                                             "strdup", "aligned_alloc"};

// ---------------------------------------------------------------------------
// Fact records (mirror extract.py's Facts.to_json schema).

struct AcquireFact {
  std::string lock;
  bool resolved;
  unsigned line;
  std::vector<std::string> held;
};

struct CallFact {
  std::string callee;
  unsigned line;
  std::vector<std::string> held;
};

struct AllocFact {
  std::string kind;
  std::string detail;
  unsigned line;
};

struct FuncFact {
  std::string name;
  std::string file;
  unsigned line = 0;
  std::vector<std::string> annotations;
  std::vector<std::string> requiresLocks;  // JSON key "requires"
  std::vector<AcquireFact> acquires;
  std::vector<CallFact> calls;
  std::vector<AllocFact> allocs;
  bool isLambda = false;
};

struct ClassFact {
  std::string name;
  std::string file;
  unsigned line = 0;
  std::vector<std::string> bases;
  std::vector<std::string> locks;
  std::vector<std::pair<std::string, std::string>> members;  // name -> type
  std::vector<std::string> methods;
};

struct EdgeFact {
  std::string before;
  std::string after;
  std::string file;
  unsigned line = 0;
};

struct Collector {
  std::string root;  // canonical root path with trailing separator stripped
  std::map<std::string, FuncFact> functions;  // keyed by qualified name
  std::map<std::string, ClassFact> classes;
  std::vector<EdgeFact> declaredEdges;
  std::set<std::string> edgeKeys;
  std::set<std::string> files;
  unsigned unresolvedCalls = 0;
};

// ---------------------------------------------------------------------------
// Helpers.

std::string canonicalize(llvm::StringRef path) {
  llvm::SmallString<256> real;
  if (llvm::sys::fs::real_path(path, real, /*expand_tilde=*/true))
    real = path;  // fall back to the spelling we were given
  llvm::sys::path::remove_dots(real, /*remove_dot_dot=*/true);
  return std::string(real.str());
}

// Relative path under the root, or empty if the location is outside it
// (system headers, builtins).
std::string relPath(const Collector &C, const SourceManager &SM,
                    SourceLocation loc) {
  if (loc.isInvalid()) return {};
  SourceLocation expansion = SM.getExpansionLoc(loc);
  const FileEntry *entry = SM.getFileEntryForID(SM.getFileID(expansion));
  if (!entry) return {};
  std::string abs = canonicalize(entry->tryGetRealPathName().empty()
                                     ? entry->getName()
                                     : entry->tryGetRealPathName());
  if (abs.size() <= C.root.size() || abs.compare(0, C.root.size(), C.root) ||
      abs[C.root.size()] != '/')
    return {};
  return abs.substr(C.root.size() + 1);
}

bool isRecordNamed(QualType type, llvm::StringRef qualified) {
  const CXXRecordDecl *record = type.getNonReferenceType()
                                    .getCanonicalType()
                                    ->getAsCXXRecordDecl();
  return record && record->getQualifiedNameAsString() == qualified;
}

std::string typeSpelling(QualType type, const ASTContext &ctx) {
  PrintingPolicy policy(ctx.getLangOpts());
  policy.SuppressScope = false;
  policy.SuppressUnwrittenScope = true;
  return type.getNonReferenceType().getUnqualifiedType().getAsString(policy);
}

const Expr *stripWrappers(const Expr *E) {
  while (E) {
    E = E->IgnoreParenImpCasts();
    if (const auto *cleanups = dyn_cast<ExprWithCleanups>(E)) {
      E = cleanups->getSubExpr();
      continue;
    }
    if (const auto *temp = dyn_cast<MaterializeTemporaryExpr>(E)) {
      E = temp->getSubExpr();
      continue;
    }
    if (const auto *unary = dyn_cast<UnaryOperator>(E)) {
      if (unary->getOpcode() == UO_Deref || unary->getOpcode() == UO_AddrOf) {
        E = unary->getSubExpr();
        continue;
      }
    }
    break;
  }
  return E;
}

// ---------------------------------------------------------------------------
// Per-TU extraction.

class Extractor : public RecursiveASTVisitor<Extractor> {
 public:
  Extractor(Collector &C, ASTContext &ctx) : C_(C), ctx_(ctx) {}

  // Decl-level hooks -------------------------------------------------------

  bool VisitCXXRecordDecl(CXXRecordDecl *D) {
    if (!D->isThisDeclarationADefinition() || D->isLambda() ||
        D->isImplicit())
      return true;
    const SourceManager &SM = ctx_.getSourceManager();
    std::string file = relPath(C_, SM, D->getLocation());
    if (file.empty()) return true;
    C_.files.insert(file);

    std::string name = D->getQualifiedNameAsString();
    if (C_.classes.count(name)) {
      recordDeclaredEdges(D, name);  // edges dedupe themselves
      return true;
    }
    ClassFact cls;
    cls.name = name;
    cls.file = file;
    cls.line = SM.getExpansionLineNumber(D->getLocation());
    for (const CXXBaseSpecifier &base : D->bases())
      if (const CXXRecordDecl *baseDecl = base.getType()->getAsCXXRecordDecl())
        cls.bases.push_back(baseDecl->getQualifiedNameAsString());
    for (const FieldDecl *field : D->fields()) {
      std::string fieldName = field->getNameAsString();
      if (fieldName.empty()) continue;
      cls.members.emplace_back(fieldName, typeSpelling(field->getType(), ctx_));
      if (isRecordNamed(field->getType(), "lmerge::Mutex"))
        cls.locks.push_back(fieldName);
    }
    for (const CXXMethodDecl *method : D->methods())
      if (!method->isImplicit())
        cls.methods.push_back(method->getNameAsString());
    C_.classes.emplace(name, std::move(cls));
    recordDeclaredEdges(D, name);
    return true;
  }

  bool VisitFunctionDecl(FunctionDecl *D) {
    if (!D->doesThisDeclarationHaveABody() || D->isImplicit() ||
        D->isDefaulted())
      return true;
    if (const auto *method = dyn_cast<CXXMethodDecl>(D))
      if (method->getParent()->isLambda())
        return true;  // emitted as Parent::{lambda:LINE} by the body walk
    const SourceManager &SM = ctx_.getSourceManager();
    std::string file = relPath(C_, SM, D->getLocation());
    if (file.empty()) return true;
    C_.files.insert(file);

    FuncFact fn;
    fn.name = functionKey(D, file);
    if (C_.functions.count(fn.name)) return true;  // header seen in a prior TU
    fn.file = file;
    fn.line = SM.getExpansionLineNumber(D->getLocation());
    collectFunctionAttrs(D, fn);
    localMutexIds_.clear();
    walkBody(D->getBody(), fn);
    std::string key = fn.name;
    C_.functions.emplace(key, std::move(fn));
    return true;
  }

 private:
  // Naming ------------------------------------------------------------------

  std::string functionKey(const FunctionDecl *D, const std::string &file) {
    std::string qual = D->getQualifiedNameAsString();
    if (D->isMain() || D->getLinkageInternal() == InternalLinkage ||
        D->isInAnonymousNamespace())
      return qual + "@" + file;
    return qual;
  }

  void collectFunctionAttrs(const FunctionDecl *D, FuncFact &fn) {
    for (const FunctionDecl *redecl : D->redecls()) {
      for (const Attr *attr : redecl->attrs()) {
        if (const auto *annotate = dyn_cast<AnnotateAttr>(attr)) {
          llvm::StringRef text = annotate->getAnnotation();
          std::string value;
          if (text == "lmerge::merge_thread_only")
            value = "merge_thread_only";
          else if (text == "lmerge::hot_path")
            value = "hot_path";
          if (!value.empty() &&
              std::find(fn.annotations.begin(), fn.annotations.end(), value) ==
                  fn.annotations.end())
            fn.annotations.push_back(value);
        } else if (const auto *req = dyn_cast<RequiresCapabilityAttr>(attr)) {
          for (const Expr *arg : req->args())
            if (std::optional<std::string> lock = resolveLockExpr(arg))
              if (std::find(fn.requiresLocks.begin(), fn.requiresLocks.end(),
                            *lock) == fn.requiresLocks.end())
                fn.requiresLocks.push_back(*lock);
        }
      }
    }
  }

  void recordDeclaredEdges(const CXXRecordDecl *D, const std::string &name) {
    const SourceManager &SM = ctx_.getSourceManager();
    for (const FieldDecl *field : D->fields()) {
      std::string after = name + "::" + field->getNameAsString();
      for (const Attr *attr : field->attrs()) {
        const auto *acq = dyn_cast<AcquiredAfterAttr>(attr);
        if (!acq) continue;
        for (const Expr *arg : acq->args()) {
          std::optional<std::string> before = resolveLockExpr(arg);
          if (!before) continue;
          std::string key = *before + "\x1f" + after;
          if (!C_.edgeKeys.insert(key).second) continue;
          EdgeFact edge;
          edge.before = *before;
          edge.after = after;
          edge.file = relPath(C_, SM, field->getLocation());
          edge.line = SM.getExpansionLineNumber(field->getLocation());
          C_.declaredEdges.push_back(std::move(edge));
        }
      }
    }
  }

  // Lock-expression resolution ----------------------------------------------

  std::optional<std::string> resolveLockExpr(const Expr *E) {
    E = stripWrappers(E);
    if (!E) return std::nullopt;
    if (const auto *member = dyn_cast<MemberExpr>(E)) {
      if (const auto *field = dyn_cast<FieldDecl>(member->getMemberDecl())) {
        const RecordDecl *parent = field->getParent();
        return parent->getQualifiedNameAsString() + "::" +
               field->getNameAsString();
      }
      return std::nullopt;
    }
    if (const auto *ref = dyn_cast<DeclRefExpr>(E)) {
      const ValueDecl *decl = ref->getDecl();
      // Thread-safety attribute arguments reference fields as DeclRefExprs.
      if (const auto *field = dyn_cast<FieldDecl>(decl))
        return field->getParent()->getQualifiedNameAsString() + "::" +
               field->getNameAsString();
      if (const auto *var = dyn_cast<VarDecl>(decl)) {
        auto it = localMutexIds_.find(var);
        if (it != localMutexIds_.end()) return it->second;
        if (var->hasGlobalStorage()) return var->getQualifiedNameAsString();
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  // Body walking ------------------------------------------------------------

  struct GuardEntry {
    const VarDecl *var;
    std::string lock;
    bool active;
  };

  std::vector<std::string> heldLocks() const {
    std::vector<std::string> held;
    for (const auto &frame : guardFrames_)
      for (const GuardEntry &entry : frame)
        if (entry.active) held.push_back(entry.lock);
    return held;
  }

  void walkBody(Stmt *body, FuncFact &fn) {
    guardFrames_.clear();
    guardFrames_.emplace_back();
    walkStmt(body, fn);
    guardFrames_.clear();
  }

  void walkStmt(Stmt *S, FuncFact &fn) {
    if (!S) return;

    if (auto *compound = dyn_cast<CompoundStmt>(S)) {
      guardFrames_.emplace_back();
      for (Stmt *child : compound->body()) walkStmt(child, fn);
      guardFrames_.pop_back();
      return;
    }

    if (auto *declStmt = dyn_cast<DeclStmt>(S)) {
      for (Decl *decl : declStmt->decls())
        if (auto *var = dyn_cast<VarDecl>(decl)) handleVarDecl(var, fn);
      return;
    }

    if (auto *lambda = dyn_cast<LambdaExpr>(S)) {
      emitLambda(lambda, fn);
      return;  // severed: no call edge, contents belong to the synthetic fn
    }

    if (auto *newExpr = dyn_cast<CXXNewExpr>(S)) {
      handleNewExpr(newExpr, fn);
      for (Stmt *child : S->children()) walkStmt(child, fn);
      return;
    }

    if (auto *call = dyn_cast<CallExpr>(S)) {
      handleCall(call, fn);
      for (Stmt *child : S->children()) walkStmt(child, fn);
      return;
    }

    if (auto *construct = dyn_cast<CXXConstructExpr>(S)) {
      handleConstruct(construct, fn);
      for (Stmt *child : S->children()) walkStmt(child, fn);
      return;
    }

    for (Stmt *child : S->children()) walkStmt(child, fn);
  }

  void handleVarDecl(VarDecl *var, FuncFact &fn) {
    const SourceManager &SM = ctx_.getSourceManager();
    QualType type = var->getType();

    if (isRecordNamed(type, "lmerge::MutexLock")) {
      std::optional<std::string> lock;
      if (const auto *construct =
              dyn_cast_or_null<CXXConstructExpr>(var->getInit()))
        if (construct->getNumArgs() >= 1)
          lock = resolveLockExpr(construct->getArg(0));
      AcquireFact acq;
      acq.lock = lock.value_or("<unresolved:" + var->getNameAsString() + ">");
      acq.resolved = lock.has_value();
      acq.line = SM.getExpansionLineNumber(var->getLocation());
      acq.held = heldLocks();
      fn.acquires.push_back(std::move(acq));
      guardFrames_.back().push_back(
          {var, lock.value_or("?"), /*active=*/true});
      return;
    }

    if (isRecordNamed(type, "lmerge::Mutex")) {
      localMutexIds_[var] = fn.name + "::" + var->getNameAsString();
      return;
    }

    if (Expr *init = var->getInit()) walkStmt(init, fn);
  }

  void handleNewExpr(CXXNewExpr *newExpr, FuncFact &fn) {
    const SourceManager &SM = ctx_.getSourceManager();
    std::string what = typeSpelling(newExpr->getAllocatedType(), ctx_);
    fn.allocs.push_back({"new", "new " + what,
                         SM.getExpansionLineNumber(newExpr->getBeginLoc())});
  }

  void handleConstruct(CXXConstructExpr *construct, FuncFact &fn) {
    const CXXConstructorDecl *ctor = construct->getConstructor();
    if (!ctor) return;
    const SourceManager &SM = ctx_.getSourceManager();
    std::string file = relPath(C_, SM, ctor->getParent()->getLocation());
    if (file.empty()) return;  // not a project class
    std::string cls = ctor->getParent()->getQualifiedNameAsString();
    fn.calls.push_back(
        {cls + "::" + ctor->getParent()->getNameAsString(),
         SM.getExpansionLineNumber(construct->getBeginLoc()), heldLocks()});
  }

  void handleCall(CallExpr *call, FuncFact &fn) {
    const SourceManager &SM = ctx_.getSourceManager();
    unsigned line = SM.getExpansionLineNumber(call->getBeginLoc());
    const FunctionDecl *callee = call->getDirectCallee();
    if (!callee) {
      ++C_.unresolvedCalls;  // function pointer / dependent call
      return;
    }
    std::string calleeName = callee->getNameAsString();

    // Guard toggles: lock.Unlock() / lock.Lock() on a MutexLock variable.
    if (const auto *memberCall = dyn_cast<CXXMemberCallExpr>(call)) {
      const CXXRecordDecl *recv = memberCall->getRecordDecl();
      if (recv && recv->getQualifiedNameAsString() == "lmerge::MutexLock" &&
          (calleeName == "Unlock" || calleeName == "Lock")) {
        if (const auto *ref = dyn_cast_or_null<DeclRefExpr>(
                stripWrappers(memberCall->getImplicitObjectArgument())))
          if (const auto *var = dyn_cast<VarDecl>(ref->getDecl()))
            for (auto &frame : guardFrames_)
              for (GuardEntry &entry : frame)
                if (entry.var == var) entry.active = (calleeName == "Lock");
        return;
      }
    }

    // Allocation taxonomy (matches extract.py).
    bool inProject =
        !relPath(C_, SM, callee->getLocation()).empty();
    if (!inProject) {
      if (kMallocFamily.count(calleeName)) {
        fn.allocs.push_back({"malloc", calleeName, line});
      } else if (calleeName == "to_string") {
        fn.allocs.push_back({"string", "to_string", line});
      } else if (calleeName == "make_unique" || calleeName == "make_shared") {
        std::string arg = "?";
        if (const auto *args = callee->getTemplateSpecializationArgs())
          if (args->size() >= 1 &&
              args->get(0).getKind() == TemplateArgument::Type)
            arg = typeSpelling(args->get(0).getAsType(), ctx_);
        fn.allocs.push_back({"new", calleeName + "<" + arg + ">", line});
      } else if (kGrowthMethods.count(calleeName)) {
        if (const auto *memberCall = dyn_cast<CXXMemberCallExpr>(call)) {
          const CXXRecordDecl *recv = memberCall->getRecordDecl();
          std::string recvName = recv ? recv->getNameAsString() : "?";
          fn.allocs.push_back(
              {"container-growth", recvName + "." + calleeName, line});
        }
      }
      return;  // call edges only between project functions
    }

    std::string file = relPath(C_, SM, callee->getLocation());
    fn.calls.push_back({functionKey(callee, file), line, heldLocks()});
  }

  void emitLambda(LambdaExpr *lambda, FuncFact &parent) {
    const SourceManager &SM = ctx_.getSourceManager();
    unsigned line = SM.getExpansionLineNumber(lambda->getBeginLoc());
    FuncFact fn;
    fn.name = parent.name + "::{lambda:" + std::to_string(line) + "}";
    if (C_.functions.count(fn.name)) return;
    fn.file = parent.file;
    fn.line = line;
    fn.isLambda = true;
    if (const CXXMethodDecl *op = lambda->getCallOperator())
      collectFunctionAttrs(op, fn);

    // The lambda body gets a fresh held-stack: it runs on whatever thread
    // invokes it, never under the parent's scoped locks.
    std::vector<std::vector<GuardEntry>> saved;
    saved.swap(guardFrames_);
    guardFrames_.emplace_back();
    walkStmt(lambda->getBody(), fn);
    guardFrames_.swap(saved);

    std::string key = fn.name;
    C_.functions.emplace(key, std::move(fn));

    // Capture initializers (e.g. `[state = MakeState()]`) still execute in
    // the parent, so walk them in the parent's context.
    for (Expr *init : lambda->capture_inits()) walkStmt(init, parent);
  }

  Collector &C_;
  ASTContext &ctx_;
  std::vector<std::vector<GuardEntry>> guardFrames_;
  std::map<const VarDecl *, std::string> localMutexIds_;
};

class ExtractConsumer : public ASTConsumer {
 public:
  explicit ExtractConsumer(Collector &C) : C_(C) {}
  void HandleTranslationUnit(ASTContext &ctx) override {
    Extractor extractor(C_, ctx);
    extractor.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  Collector &C_;
};

class ExtractAction : public ASTFrontendAction {
 public:
  explicit ExtractAction(Collector &C) : C_(C) {}
  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance &,
                                                 llvm::StringRef) override {
    return std::make_unique<ExtractConsumer>(C_);
  }

 private:
  Collector &C_;
};

class ExtractActionFactory : public tooling::FrontendActionFactory {
 public:
  explicit ExtractActionFactory(Collector &C) : C_(C) {}
  std::unique_ptr<FrontendAction> create() override {
    return std::make_unique<ExtractAction>(C_);
  }

 private:
  Collector &C_;
};

// ---------------------------------------------------------------------------
// JSON emission.

llvm::json::Array toJson(const std::vector<std::string> &values) {
  llvm::json::Array out;
  for (const std::string &value : values) out.push_back(value);
  return out;
}

void emitFacts(const Collector &C, llvm::raw_ostream &os) {
  llvm::json::Array functions;
  for (const auto &[name, fn] : C.functions) {
    llvm::json::Array acquires;
    for (const AcquireFact &acq : fn.acquires)
      acquires.push_back(llvm::json::Object{{"lock", acq.lock},
                                            {"resolved", acq.resolved},
                                            {"line", acq.line},
                                            {"held", toJson(acq.held)}});
    llvm::json::Array calls;
    for (const CallFact &call : fn.calls)
      calls.push_back(llvm::json::Object{{"callee", call.callee},
                                         {"line", call.line},
                                         {"held", toJson(call.held)}});
    llvm::json::Array allocs;
    for (const AllocFact &alloc : fn.allocs)
      allocs.push_back(llvm::json::Object{{"kind", alloc.kind},
                                          {"detail", alloc.detail},
                                          {"line", alloc.line}});
    functions.push_back(
        llvm::json::Object{{"name", fn.name},
                           {"file", fn.file},
                           {"line", fn.line},
                           {"annotations", toJson(fn.annotations)},
                           {"requires", toJson(fn.requiresLocks)},
                           {"acquires", std::move(acquires)},
                           {"calls", std::move(calls)},
                           {"allocs", std::move(allocs)},
                           {"is_lambda", fn.isLambda}});
  }

  llvm::json::Array classes;
  for (const auto &[name, cls] : C.classes) {
    llvm::json::Object members;
    for (const auto &[memberName, type] : cls.members)
      members[memberName] = type;
    classes.push_back(llvm::json::Object{{"name", cls.name},
                                         {"file", cls.file},
                                         {"line", cls.line},
                                         {"bases", toJson(cls.bases)},
                                         {"locks", toJson(cls.locks)},
                                         {"members", std::move(members)},
                                         {"methods", toJson(cls.methods)}});
  }

  llvm::json::Array edges;
  for (const EdgeFact &edge : C.declaredEdges)
    edges.push_back(llvm::json::Object{{"before", edge.before},
                                       {"after", edge.after},
                                       {"file", edge.file},
                                       {"line", edge.line}});

  llvm::json::Array files;
  for (const std::string &file : C.files) files.push_back(file);

  llvm::json::Object facts{{"functions", std::move(functions)},
                           {"classes", std::move(classes)},
                           {"declared_edges", std::move(edges)},
                           {"unresolved_calls", C.unresolvedCalls},
                           {"files", std::move(files)}};
  os << llvm::json::Value(std::move(facts)) << "\n";
}

}  // namespace

int main(int argc, const char **argv) {
  auto parser =
      tooling::CommonOptionsParser::create(argc, argv, ToolCategory);
  if (!parser) {
    llvm::errs() << llvm::toString(parser.takeError()) << "\n";
    return 2;
  }
  Collector collector;
  collector.root = canonicalize(RootOpt.getValue());
  while (!collector.root.empty() && collector.root.back() == '/')
    collector.root.pop_back();

  tooling::ClangTool tool(parser->getCompilations(),
                          parser->getSourcePathList());
  ExtractActionFactory factory(collector);
  if (tool.run(&factory) != 0) return 2;
  emitFacts(collector, llvm::outs());
  return 0;
}
