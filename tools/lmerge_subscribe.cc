// lmerge_subscribe — subscribe to an lmerge_served daemon and capture the
// merged output stream to a stream file.
//
//   lmerge_subscribe <host> <port> <out.lmst> [--name=X] [--validate]
//                    [--connect-timeout-ms=N] [--retry=N]
//
// Receives until the server says BYE or closes, then writes the file.
// --retry=N retries a failed connect with exponential backoff and
// --connect-timeout-ms bounds each attempt, so scripts can start the
// subscriber alongside the server without sleeping first.
// --validate additionally re-validates the received stream and fails if the
// server ever emitted an illegal physical stream.  Note a subscriber only
// sees output from its subscription point onward; subscribe before the
// publishers connect to capture the whole stream.

#include <cstdio>

#include "net/client.h"
#include "net/tcp.h"
#include "stream/validate.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() != 3) {
    std::fprintf(stderr,
                 "usage: lmerge_subscribe <host> <port> <out.lmst> "
                 "[--name=X] [--validate]\n"
                 "                        [--connect-timeout-ms=N] "
                 "[--retry=N]\n");
    return 2;
  }
  const std::string host = flags.positional()[0];
  const int port = std::stoi(flags.positional()[1]);
  const std::string out_path = flags.positional()[2];

  std::unique_ptr<net::Connection> connection;
  net::TcpConnectOptions connect_options;
  connect_options.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect-timeout-ms", 0));
  connect_options.retries = static_cast<int>(flags.GetInt("retry", 0));
  Status status = net::TcpConnect(host, port, connect_options, &connection);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  net::SubscriberClient subscriber(std::move(connection));
  net::WelcomeMessage welcome;
  status = subscriber.Handshake(flags.GetString("name", "subscriber"),
                                &welcome);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_subscribe] subscribed (server stable %s)\n",
               TimestampToString(welcome.output_stable).c_str());

  CollectingSink captured;
  status = subscriber.Consume(&captured);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_subscribe] stream ended (%s): %lld "
               "elements\n",
               subscriber.bye_reason().empty() ? "eof"
                                               : subscriber.bye_reason().c_str(),
               static_cast<long long>(subscriber.elements_received()));

  if (flags.Has("validate")) {
    StreamValidator validator;
    status = validator.ConsumeAll(captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "[lmerge_subscribe] INVALID merged stream: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_subscribe] merged stream VALID (%lld TDB "
                 "events)\n",
                 static_cast<long long>(validator.tdb().EventCount()));
  }

  status = WriteStreamFile(out_path, captured.elements());
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu elements\n", out_path.c_str(),
              captured.elements().size());
  return 0;
}
