// lmerge_subscribe — subscribe to an lmerge_served daemon and capture the
// merged output stream to a stream file.
//
//   lmerge_subscribe <host> <port> <out.lmst> [--name=X] [--validate]
//                    [--connect-timeout-ms=N] [--retry=N] [--latency]
//
// Receives until the server says BYE or closes, then writes the file.
// --retry=N retries a failed connect with exponential backoff and
// --connect-timeout-ms bounds each attempt, so scripts can start the
// subscriber alongside the server without sleeping first.
// --validate additionally re-validates the received stream and fails if the
// server ever emitted an illegal physical stream.  Note a subscriber only
// sees output from its subscription point onward; subscribe before the
// publishers connect to capture the whole stream.
//
// --latency measures end-to-end publish->delivery latency from the wire:
// v5 batches carry the publisher's send stamp, and this tool diffs it
// against its own steady clock at delivery — an EXTERNAL measurement the
// server cannot flatter.  Per-element samples weight each batch by its
// element count; percentiles print at exit.  Meaningful when publisher and
// subscriber run on the same host (shared steady clock), e.g. the demo
// pipeline; cross-machine numbers include the clock offset.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "net/client.h"
#include "obs/latency.h"
#include "net/tcp.h"
#include "stream/validate.h"
#include "tools/cli.h"

using namespace lmerge;
using namespace lmerge::tools;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().size() != 3) {
    std::fprintf(stderr,
                 "usage: lmerge_subscribe <host> <port> <out.lmst> "
                 "[--name=X] [--validate]\n"
                 "                        [--connect-timeout-ms=N] "
                 "[--retry=N] [--latency]\n");
    return 2;
  }
  const std::string host = flags.positional()[0];
  const int port = std::stoi(flags.positional()[1]);
  const std::string out_path = flags.positional()[2];

  std::unique_ptr<net::Connection> connection;
  net::TcpConnectOptions connect_options;
  connect_options.connect_timeout_ms =
      static_cast<int>(flags.GetInt("connect-timeout-ms", 0));
  connect_options.retries = static_cast<int>(flags.GetInt("retry", 0));
  Status status = net::TcpConnect(host, port, connect_options, &connection);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  net::SubscriberClient subscriber(std::move(connection));
  net::WelcomeMessage welcome;
  status = subscriber.Handshake(flags.GetString("name", "subscriber"),
                                &welcome);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_subscribe] subscribed (server stable %s)\n",
               TimestampToString(welcome.output_stable).c_str());

  std::vector<int64_t> latency_us;
  if (flags.Has("latency")) {
    subscriber.set_stamp_observer(
        [&latency_us](int64_t origin_us, size_t count) {
          const int64_t sample = obs::MonotonicMicros() - origin_us;
          // One sample per element, so a 64-element batch that aged 10ms
          // weighs 64x a singleton: percentiles are per-element, matching
          // the server-side latency.publish_to_fanout_us histogram.
          latency_us.insert(latency_us.end(), count,
                            sample > 0 ? sample : 0);
        });
  }

  CollectingSink captured;
  status = subscriber.Consume(&captured);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "[lmerge_subscribe] stream ended (%s): %lld "
               "elements\n",
               subscriber.bye_reason().empty() ? "eof"
                                               : subscriber.bye_reason().c_str(),
               static_cast<long long>(subscriber.elements_received()));

  if (flags.Has("validate")) {
    StreamValidator validator;
    status = validator.ConsumeAll(captured.elements());
    if (!status.ok()) {
      std::fprintf(stderr, "[lmerge_subscribe] INVALID merged stream: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "[lmerge_subscribe] merged stream VALID (%lld TDB "
                 "events)\n",
                 static_cast<long long>(validator.tdb().EventCount()));
  }

  if (flags.Has("latency")) {
    if (latency_us.empty()) {
      std::fprintf(stderr,
                   "[lmerge_subscribe] latency: no stamped batches "
                   "(pre-v5 server or publishers?)\n");
    } else {
      std::sort(latency_us.begin(), latency_us.end());
      const auto pct = [&latency_us](double q) {
        const size_t index = static_cast<size_t>(
            q * static_cast<double>(latency_us.size() - 1));
        return static_cast<long long>(latency_us[index]);
      };
      int64_t sum = 0;
      for (const int64_t v : latency_us) sum += v;
      std::fprintf(stderr,
                   "[lmerge_subscribe] publish->delivery latency over %zu "
                   "elements (us): min %lld p50 %lld p90 %lld p99 %lld "
                   "max %lld mean %lld\n",
                   latency_us.size(), pct(0.0), pct(0.5), pct(0.9),
                   pct(0.99), pct(1.0),
                   static_cast<long long>(
                       sum / static_cast<int64_t>(latency_us.size())));
    }
  }

  status = WriteStreamFile(out_path, captured.elements());
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu elements\n", out_path.c_str(),
              captured.elements().size());
  return 0;
}
