// Figure 6 — Memory (left) and throughput (right) as StableFreq increases
// from 0.001% to 1%.
//
// Paper shape: memory *decreases* with StableFreq (more frequent cleanup of
// fully frozen index nodes); throughput of the general algorithms (LMR3+,
// LMR4) *decreases* (each stable element triggers compatibility checks over
// half-frozen nodes), while the simple variants are insensitive.
//
// Counters: peak_bytes and items/sec per (variant, StableFreq).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

// range(0) encodes StableFreq in units of 0.001% (i.e. 1 -> 0.00001).
double DecodeFreq(int64_t range) {
  return static_cast<double>(range) * 1e-5;
}

std::vector<ElementSequence> ReplicasFor(double stable_freq) {
  workload::GeneratorConfig config = PaperConfig(15000, 21);
  config.stable_freq = stable_freq;
  config.payload_string_bytes = 200;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);
  return MakeReplicas(history, 2, /*disorder=*/0.2, /*split=*/0.3, 5);
}

void StableFreqSweep(benchmark::State& state, MergeVariant variant) {
  const double freq = DecodeFreq(state.range(0));
  const std::vector<ElementSequence> inputs = ReplicasFor(freq);
  int64_t peak = 0;
  int64_t delivered = 0;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, 2, &sink);
    peak = RoundRobinPeakMemory(algo.get(), inputs, 256);
    delivered += static_cast<int64_t>(inputs[0].size() + inputs[1].size());
  }
  state.SetItemsProcessed(delivered);
  state.counters["stable_freq_pct"] = benchmark::Counter(freq * 100.0);
  state.counters["peak_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
}

#define FIG6_BENCH(variant_enum, name)                                    \
  void BM_Fig6_##name(benchmark::State& state) {                         \
    StableFreqSweep(state, MergeVariant::variant_enum);                  \
  }                                                                       \
  BENCHMARK(BM_Fig6_##name)                                               \
      ->Arg(1)      /* 0.001% */                                          \
      ->Arg(10)     /* 0.01%  */                                          \
      ->Arg(100)    /* 0.1%   */                                          \
      ->Arg(1000)   /* 1%     */                                          \
      ->Unit(benchmark::kMillisecond)

FIG6_BENCH(kLMR3Plus, LMR3Plus);
FIG6_BENCH(kLMR4, LMR4);
FIG6_BENCH(kLMR3Minus, LMR3Minus);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
