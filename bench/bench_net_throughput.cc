// Networked-service throughput: elements per second through the full wire
// path — protocol encode, loopback transport, frame reassembly, session
// state machine, merge, fan-out — without socket or scheduler noise.
//
// Acceptance floor for the service layer: >= 100k elements/sec through the
// loopback transport (items_per_second on the _batch benchmarks).
//
// Reported counter: published input elements per second.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/loopback.h"
#include "net/server.h"
#include "obs/latency.h"
#include "properties/runtime_stats.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

// Small payloads: this harness measures the wire path, not memcpy of the
// paper's 1000-byte strings (bench_fig3 covers merge-core throughput).
workload::GeneratorConfig NetConfig(int64_t num_inserts) {
  workload::GeneratorConfig config = PaperConfig(num_inserts);
  config.payload_string_bytes = 16;
  return config;
}

const workload::LogicalHistory& History() {
  static const workload::LogicalHistory* history = [] {
    return new workload::LogicalHistory(
        workload::GenerateHistory(NetConfig(20000)));
  }();
  return *history;
}

// Pre-encoded frames per publisher, so the timed loop measures the
// server-side path (reassembly + session + merge + fan-out).
std::vector<std::string> EncodeTapes(
    const std::vector<ElementSequence>& replicas, size_t batch_size,
    std::vector<std::vector<std::string>>* frames_out) {
  std::vector<std::string> hellos;
  frames_out->clear();
  for (size_t s = 0; s < replicas.size(); ++s) {
    // Declare the tape's observed properties, as lmerge_publish does, so
    // the server's factory picks the cheapest safe algorithm.
    StreamStatsCollector collector;
    for (const StreamElement& element : replicas[s]) {
      collector.Observe(element);
    }
    net::HelloMessage hello;
    hello.role = net::PeerRole::kPublisher;
    hello.properties = collector.ObservedProperties();
    hello.peer_name = "bench-" + std::to_string(s);
    hellos.push_back(net::EncodeHelloFrame(hello));
    std::vector<std::string> frames;
    const ElementSequence& tape = replicas[s];
    for (size_t i = 0; i < tape.size(); i += batch_size) {
      if (batch_size == 1) {
        frames.push_back(net::EncodeElementFrame(tape[i]));
      } else {
        const ElementSequence batch(
            tape.begin() + static_cast<ElementSequence::difference_type>(i),
            tape.begin() + static_cast<ElementSequence::difference_type>(
                               std::min(i + batch_size, tape.size())));
        // Sessions handshake at v5, whose batch frames carry a trailing
        // origin stamp.  The tapes are pre-encoded outside the timed loop,
        // so the stamp is stale by publish time — fine for throughput; the
        // latency histograms it feeds are not what this bench reports.
        frames.push_back(
            net::EncodeElementsFrame(batch, obs::MonotonicMicros()));
      }
    }
    frames_out->push_back(std::move(frames));
  }
  return hellos;
}

void NetThroughput(benchmark::State& state, size_t batch_size,
                   double disorder, double split_probability,
                   int num_publishers, int merge_threads = 1) {
  const std::vector<ElementSequence> replicas =
      MakeReplicas(History(), num_publishers, disorder, split_probability,
                   /*seed=*/7);
  int64_t total_elements = 0;
  for (const ElementSequence& tape : replicas) {
    total_elements += static_cast<int64_t>(tape.size());
  }
  std::vector<std::vector<std::string>> frames;
  const std::vector<std::string> hellos =
      EncodeTapes(replicas, batch_size, &frames);

  int64_t delivered = 0;
  LatencySampler latency;
  // Registry counters accumulate across iterations (and across benchmarks
  // in the same process), so wire-path totals are published as the delta
  // over the timed loop — the registry replaces the ad-hoc tallies this
  // harness used to keep by hand.
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    net::MergeServerOptions server_options;
    server_options.merge_threads = merge_threads;
    net::MergeServer server(server_options);
    NullSink sink;
    server.AddOutputSink(&sink);
    std::vector<std::unique_ptr<net::Connection>> clients;
    std::vector<std::unique_ptr<net::Connection>> servers;
    std::vector<int> sessions;
    for (int s = 0; s < num_publishers; ++s) {
      auto [client, server_end] = net::CreateLoopbackPair();
      clients.push_back(std::move(client));
      servers.push_back(std::move(server_end));
      sessions.push_back(server.OnConnect(servers.back().get()));
      const Status status =
          server.OnBytes(sessions.back(), hellos[static_cast<size_t>(s)]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
    }
    // Round-robin one frame per publisher, like interleaved arrivals.
    size_t next = 0;
    bool any = true;
    while (any) {
      any = false;
      for (int s = 0; s < num_publishers; ++s) {
        const auto& tape_frames = frames[static_cast<size_t>(s)];
        if (next >= tape_frames.size()) continue;
        const auto start = LatencySampler::Clock::now();
        const Status status =
            server.OnBytes(sessions[static_cast<size_t>(s)],
                           tape_frames[next]);
        if ((next & 15) == 0) {
          latency.Record(start, LatencySampler::Clock::now());
        }
        LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
        any = true;
      }
      ++next;
    }
    // The timed region must cover the merge itself, not just the enqueues —
    // and a quiesced server tears down without touching the (already
    // destroyed) loopback connections.
    server.Flush();
    delivered += total_elements;
    // Drain response queues (WELCOME/FEEDBACK) outside the books.
    for (auto& client : clients) {
      std::string discard;
      (void)client->TryReceive(&discard);
    }
  }
  state.SetItemsProcessed(delivered);
  latency.Publish(state);
  state.counters["publishers"] = benchmark::Counter(num_publishers);
  state.counters["batch"] = benchmark::Counter(static_cast<double>(batch_size));
  state.counters["merge_threads"] =
      benchmark::Counter(static_cast<double>(merge_threads));
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Global().Snapshot();
  const auto delta = [&](const std::string& name) {
    return static_cast<double>(after.Value(name) - before.Value(name));
  };
  state.counters["rx_frames"] = benchmark::Counter(delta("net.rx.frames"));
  state.counters["rx_bytes"] = benchmark::Counter(delta("net.rx.bytes"));
  state.counters["stalls"] =
      benchmark::Counter(delta("engine.backpressure_stalls"));
  state.counters["merge_batches"] = benchmark::Counter(delta("engine.batches"));
}

// In-order insert-only replicas: the factory picks one of the cheap merge
// cases, so this measures the wire path itself (the >= 100k/s floor).
void BM_NetThroughput_InOrderBatch64(benchmark::State& state) {
  NetThroughput(state, 64, /*disorder=*/0.0, /*split_probability=*/0.0,
                static_cast<int>(state.range(0)));
}
BENCHMARK(BM_NetThroughput_InOrderBatch64)
    ->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

void BM_NetThroughput_InOrderSingleElementFrames(benchmark::State& state) {
  NetThroughput(state, 1, /*disorder=*/0.0, /*split_probability=*/0.0,
                static_cast<int>(state.range(0)));
}
BENCHMARK(BM_NetThroughput_InOrderSingleElementFrames)
    ->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

// Divergent replicas (disorder + revisions): dominated by the general
// merge algorithm, the wire overhead rides on top.
void BM_NetThroughput_DisorderedBatch64(benchmark::State& state) {
  NetThroughput(state, 64, /*disorder=*/0.2, /*split_probability=*/0.1,
                static_cast<int>(state.range(0)));
}
BENCHMARK(BM_NetThroughput_DisorderedBatch64)
    ->DenseRange(1, 3, 1)
    ->Unit(benchmark::kMillisecond);

// Partitioned merge sweep (--merge-threads = range(0)): the merge-heavy
// disordered workload over two divergent publishers, the shape where
// sharding the merge core can pay.  merge_threads=1 is the single-threaded
// ConcurrentMerger baseline.  Speedup needs real cores: on a single-core
// host the shard threads time-slice and the sweep only measures the
// partitioning overhead (see BENCH_throughput.json notes).
void BM_NetThroughput_MergeThreads(benchmark::State& state) {
  NetThroughput(state, 64, /*disorder=*/0.2, /*split_probability=*/0.1,
                /*num_publishers=*/2,
                /*merge_threads=*/static_cast<int>(state.range(0)));
}
BENCHMARK(BM_NetThroughput_MergeThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The fan-out path: one publisher, N subscribers each receiving every
// merged element as an encoded frame.
void BM_NetThroughput_FanOut(benchmark::State& state) {
  const int num_subscribers = static_cast<int>(state.range(0));
  const std::vector<ElementSequence> replicas =
      MakeReplicas(History(), 1, 0.0, 0.0, 7);
  std::vector<std::vector<std::string>> frames;
  const std::vector<std::string> hellos = EncodeTapes(replicas, 64, &frames);

  net::HelloMessage sub_hello;
  sub_hello.role = net::PeerRole::kSubscriber;
  const std::string sub_hello_frame = net::EncodeHelloFrame(sub_hello);

  int64_t delivered = 0;
  for (auto _ : state) {
    net::MergeServer server;
    std::vector<std::unique_ptr<net::Connection>> ends;
    for (int s = 0; s < num_subscribers; ++s) {
      auto [client, server_end] = net::CreateLoopbackPair();
      const int id = server.OnConnect(server_end.get());
      const Status status = server.OnBytes(id, sub_hello_frame);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      ends.push_back(std::move(client));
      ends.push_back(std::move(server_end));
    }
    auto [client, server_end] = net::CreateLoopbackPair();
    const int publisher = server.OnConnect(server_end.get());
    LM_CHECK(server.OnBytes(publisher, hellos[0]).ok());
    for (const std::string& frame : frames[0]) {
      const Status status = server.OnBytes(publisher, frame);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      // Keep subscriber queues bounded.
      for (size_t e = 0; e < ends.size(); e += 2) {
        std::string discard;
        (void)ends[e]->TryReceive(&discard);
      }
    }
    // Quiesce inside the timed region: fan-out happens on the merge thread.
    server.Flush();
    delivered += static_cast<int64_t>(replicas[0].size());
  }
  state.SetItemsProcessed(delivered);
  state.counters["subscribers"] = benchmark::Counter(num_subscribers);
}
BENCHMARK(BM_NetThroughput_FanOut)
    ->DenseRange(0, 4, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lmerge::bench

int main(int argc, char** argv) {
  return lmerge::bench::RunBenchmarksWithJson(argc, argv);
}
