// Table IV — Empirical validation of the runtime and space complexity of the
// LMerge algorithms, by sweeping the parameters the table is stated in:
//   s — number of input streams,
//   w — live (not fully frozen) unique (Vs, payload) keys,
//   d — elements sharing a (Vs, payload) (R4 only).
//
// Expected scaling:
//   R0/R1/R2: O(1)/O(s)/O(s) insert time, O(1)/O(s)/O(g p) space;
//   R3: O(lg w) insert, O(w (p + s)) space — time grows slowly with w,
//       space linear in w but near-flat in s;
//   R4: additional lg d factor and O(w (p + s d)) space.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

// Inserts `live` events (unique keys, lifetimes open past the horizon) and
// then times additional inserts against the loaded index.
void InsertTimeVsLiveKeys(benchmark::State& state, MergeVariant variant) {
  const int64_t live = state.range(0);
  NullSink sink;
  auto algo = CreateMergeAlgorithm(variant, 2, &sink);
  for (int64_t i = 0; i < live; ++i) {
    LM_CHECK(algo->OnElement(0, StreamElement::Insert(
                                    Row::OfInt(i), i, 1000000000 + i))
                 .ok());
  }
  int64_t key = live;
  for (auto _ : state) {
    LM_CHECK(algo->OnElement(0, StreamElement::Insert(Row::OfInt(key), key,
                                                      1000000000 + key))
                 .ok());
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["live_keys_w"] = benchmark::Counter(
      static_cast<double>(live));
  state.counters["state_bytes"] =
      benchmark::Counter(static_cast<double>(algo->StateBytes()));
}

void BM_Table4_R3InsertVsW(benchmark::State& state) {
  InsertTimeVsLiveKeys(state, MergeVariant::kLMR3Plus);
}
void BM_Table4_R4InsertVsW(benchmark::State& state) {
  InsertTimeVsLiveKeys(state, MergeVariant::kLMR4);
}
void BM_Table4_R0InsertVsW(benchmark::State& state) {
  InsertTimeVsLiveKeys(state, MergeVariant::kLMR0);
}
BENCHMARK(BM_Table4_R3InsertVsW)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Table4_R4InsertVsW)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_Table4_R0InsertVsW)->Arg(1000)->Arg(10000)->Arg(100000);

// Space as a function of the number of streams s, at fixed w: R3's in2t
// shares payloads (near-flat); LMR3- duplicates them (linear).
void SpaceVsStreams(benchmark::State& state, MergeVariant variant) {
  const int streams = static_cast<int>(state.range(0));
  const int64_t live = 2000;
  const std::string blob(1000, 'b');
  int64_t bytes = 0;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, streams, &sink);
    for (int64_t i = 0; i < live; ++i) {
      for (int s = 0; s < streams; ++s) {
        LM_CHECK(algo->OnElement(
                         s, StreamElement::Insert(
                                Row::OfIntAndString(i, blob), i,
                                1000000000 + i))
                     .ok());
      }
    }
    bytes = algo->StateBytes();
  }
  state.counters["streams_s"] = benchmark::Counter(streams);
  state.counters["state_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
  state.counters["bytes_per_key"] = benchmark::Counter(
      static_cast<double>(bytes) / static_cast<double>(live));
}

void BM_Table4_R3SpaceVsS(benchmark::State& state) {
  SpaceVsStreams(state, MergeVariant::kLMR3Plus);
}
void BM_Table4_R3MinusSpaceVsS(benchmark::State& state) {
  SpaceVsStreams(state, MergeVariant::kLMR3Minus);
}
BENCHMARK(BM_Table4_R3SpaceVsS)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);
BENCHMARK(BM_Table4_R3MinusSpaceVsS)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

// R4 insert/adjust cost as d (duplicates per key) grows: the extra lg d of
// the in3t third tier.
void BM_Table4_R4InsertVsD(benchmark::State& state) {
  const int64_t dups = state.range(0);
  NullSink sink;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR4, 2, &sink);
  // One hot key with `dups` distinct end times.
  for (int64_t d = 0; d < dups; ++d) {
    LM_CHECK(algo->OnElement(0, StreamElement::Insert(Row::OfInt(7), 10,
                                                      1000000 + d))
                 .ok());
  }
  int64_t ve = 1000000 + dups;
  for (auto _ : state) {
    LM_CHECK(algo->OnElement(0, StreamElement::Insert(Row::OfInt(7), 10,
                                                      ve))
                 .ok());
    ++ve;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["dups_d"] = benchmark::Counter(
      static_cast<double>(dups));
}
BENCHMARK(BM_Table4_R4InsertVsD)->Arg(16)->Arg(256)->Arg(4096);

// Stable-processing cost: O(c lg w + h) — proportional to the number of
// events frozen per stable element.
void BM_Table4_R3StableCost(benchmark::State& state) {
  const int64_t batch = state.range(0);
  NullSink sink;
  int64_t processed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &sink);
    for (int64_t i = 0; i < batch; ++i) {
      LM_CHECK(algo->OnElement(
                       0, StreamElement::Insert(Row::OfInt(i), i, i + 10))
                   .ok());
    }
    state.ResumeTiming();
    // One stable freezes the whole batch.
    LM_CHECK(algo->OnElement(0, StreamElement::Stable(batch + 20)).ok());
    processed += batch;
  }
  state.SetItemsProcessed(processed);
  state.counters["frozen_per_stable_c"] =
      benchmark::Counter(static_cast<double>(batch));
}
BENCHMARK(BM_Table4_R3StableCost)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
