// Figure 5 — Throughput as stream lag increases.
//
// Setup per Sec. VI-C.3: three input streams with 20% disorder,
// StableFreq 0.1%, 40-second lifetimes; one or two streams lag the leader
// by a fixed delay.  Paper shape: throughput *improves* with lag (elements
// from lagging streams arrive behind the output stable point and are
// dropped cheaply), and improves more when more streams lag.
//
// Lag is realized by interleaving: at any instant the lagging replica is
// delivering elements `lag_seconds` older than the leader's.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/delay.h"
#include "engine/simulator.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

// Builds the interleaved delivery schedule: each replica at `rate`
// elements/sec, replicas beyond the first delayed by lag_seconds.
// Substitution note (also recorded in EXPERIMENTS.md): application time is
// pinned to arrival time (5000 elements/sec -> 200 us gaps) and lifetimes
// are scaled to 1 s so that a multi-second lag actually places the lagging
// replica behind *fully frozen* (already purged) state — the regime in
// which LMerge "can directly drop tuples from the lagging streams".  The
// paper's absolute 40 s lifetime with a <=5 s lag exercises the same code
// path only at its testbed's much longer run lengths.
std::vector<ElementSequence> Replicas() {
  workload::GeneratorConfig config = PaperConfig(15000, 7);
  config.stable_freq = 0.001;         // StableFreq 0.1%
  config.max_gap = 400;               // avg 200 us between starts
  config.event_duration = 1'000'000;  // 1 s lifetimes
  config.duration_jitter = 0;
  config.payload_string_bytes = 1000;
  static const std::vector<ElementSequence>* replicas = [&config] {
    const workload::LogicalHistory history =
        workload::GenerateHistory(config);
    return new std::vector<ElementSequence>(
        MakeReplicas(history, 3, /*disorder=*/0.2, /*split=*/0.0, 99));
  }();
  return *replicas;
}

void Lag(benchmark::State& state, int lagging_count) {
  const double lag_seconds = static_cast<double>(state.range(0)) / 10.0;
  const double rate = 5000.0;
  const std::vector<ElementSequence> replicas = Replicas();

  int64_t delivered = 0;
  int64_t dropped = 0;
  for (auto _ : state) {
    NullSink out;
    auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 3, &out);
    // Merge-by-arrival: replica r's element i arrives at i/rate (+ lag).
    size_t next[3] = {0, 0, 0};
    while (true) {
      int best = -1;
      double best_time = 0;
      for (int r = 0; r < 3; ++r) {
        if (next[r] >= replicas[static_cast<size_t>(r)].size()) continue;
        const double lag =
            (r >= 3 - lagging_count) ? lag_seconds : 0.0;
        const double t = static_cast<double>(next[r]) / rate + lag;
        if (best < 0 || t < best_time) {
          best = r;
          best_time = t;
        }
      }
      if (best < 0) break;
      const Status status = algo->OnElement(
          best, replicas[static_cast<size_t>(best)][next[best]]);
      LM_CHECK(status.ok());
      ++next[best];
      ++delivered;
    }
    dropped = algo->stats().dropped;
  }
  state.SetItemsProcessed(delivered);
  state.counters["lag_seconds"] =
      benchmark::Counter(static_cast<double>(state.range(0)) / 10.0);
  state.counters["lagging_streams"] = benchmark::Counter(lagging_count);
  // Deterministic evidence of the mechanism: elements from lagging streams
  // that arrive behind already-frozen state and are dropped cheaply.
  state.counters["cheap_drops"] =
      benchmark::Counter(static_cast<double>(dropped));
}

void BM_Fig5_OneLagging(benchmark::State& state) { Lag(state, 1); }
void BM_Fig5_TwoLagging(benchmark::State& state) { Lag(state, 2); }

// Lag 0 .. 5 s in 1 s steps (range value = tenths of a second).
BENCHMARK(BM_Fig5_OneLagging)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig5_TwoLagging)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
