// Figure 7 — Enforcing stream properties vs. merging directly
// (Sec. VI-D): C+LMR1 (a Cleanse operator ordering each input, feeding the
// simple LMR1) against LMR3+ and LMR3-, as the number of inputs grows
// from 2 to 10.
//
// Workload: divergent replicas of one logical stream with 50% disorder and
// 50% of events presented as a provisional insert later revised by an
// adjust (the paper pushes its stream through an aggregate to get ~36%
// adjusts; the revision-heavy variants exercise the same merge paths while
// keeping the paper's long event lifetimes, which is what makes Cleanse
// buffer).  StableFreq 0.1%.
//
// Paper shapes:
//  * memory: LMR3+ nearly flat in #inputs; C+LMR1 and LMR3- degrade
//    linearly (private buffers / duplicated payloads per input) — ~7x over
//    LMR3+ at 10 inputs for C+LMR1;
//  * throughput (wall-clock per delivered element): LMR3+ fastest;
//  * latency: C+LMR1 holds every element until the stable point crosses its
//    Ve — orders of magnitude above LMR3+'s immediate forwarding.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/simulator.h"
#include "operators/cleanse.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

std::vector<ElementSequence> Replicas(int count) {
  workload::GeneratorConfig config = PaperConfig(20000, 31);
  config.stable_freq = 0.002;
  // Lifetimes ~10% of the stream's span: events keep freezing throughout
  // the run, so Cleanse continuously buffers and releases (a few thousand
  // active events at any instant).
  config.event_duration = 30000;
  config.duration_jitter = 10000;
  config.payload_string_bytes = 256;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);
  return MakeReplicas(history, count, /*disorder=*/0.5,
                      /*split_probability=*/0.5, 700);
}

// Arrival times per input: each element arrives when its stream "reaches"
// it — the running maximum of Vs along the sequence (disordered elements
// arrive late by construction).
std::vector<std::vector<double>> ArrivalTimes(
    const std::vector<ElementSequence>& inputs) {
  std::vector<std::vector<double>> arrivals(inputs.size());
  for (size_t s = 0; s < inputs.size(); ++s) {
    double clock = 0;
    arrivals[s].reserve(inputs[s].size());
    for (const StreamElement& e : inputs[s]) {
      clock = std::max(clock,
                       static_cast<double>(e.vs()) / kTicksPerSecond);
      arrivals[s].push_back(clock);
    }
  }
  return arrivals;
}

struct LatencyProbe : ElementSink {
  const double* now = nullptr;
  double total = 0;
  int64_t count = 0;
  void OnElement(const StreamElement& e) override {
    if (!e.is_insert()) return;
    total += *now - static_cast<double>(e.vs()) / kTicksPerSecond;
    ++count;
  }
  double Mean() const { return count == 0 ? 0 : total / count; }
};

struct RunStats {
  int64_t peak_bytes = 0;
  double mean_latency = 0;
  int64_t delivered = 0;
};

// Delivers all inputs in global arrival order to `consume`; samples memory
// via `memory`.
template <typename ConsumeFn, typename MemoryFn>
RunStats DeliverByArrival(const std::vector<ElementSequence>& inputs,
                          double* now, LatencyProbe* probe,
                          ConsumeFn&& consume, MemoryFn&& memory) {
  const auto arrivals = ArrivalTimes(inputs);
  std::vector<size_t> next(inputs.size(), 0);
  RunStats stats;
  while (true) {
    int best = -1;
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (next[s] >= inputs[s].size()) continue;
      if (best < 0 || arrivals[s][next[s]] <
                          arrivals[static_cast<size_t>(best)]
                                  [next[static_cast<size_t>(best)]]) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    const auto b = static_cast<size_t>(best);
    *now = arrivals[b][next[b]];
    consume(best, inputs[b][next[b]]);
    ++next[b];
    if (++stats.delivered % 512 == 0) {
      stats.peak_bytes = std::max(stats.peak_bytes, memory());
    }
  }
  stats.peak_bytes = std::max(stats.peak_bytes, memory());
  stats.mean_latency = probe->Mean();
  return stats;
}

RunStats RunDirect(MergeVariant variant, int num_inputs,
                   const std::vector<ElementSequence>& inputs) {
  LatencyProbe probe;
  double now = 0;
  probe.now = &now;
  auto algo = CreateMergeAlgorithm(variant, num_inputs, &probe);
  return DeliverByArrival(
      inputs, &now, &probe,
      [&algo](int s, const StreamElement& e) {
        LM_CHECK(algo->OnElement(s, e).ok());
      },
      [&algo] { return algo->StateBytes(); });
}

RunStats RunCleansed(int num_inputs,
                     const std::vector<ElementSequence>& inputs) {
  LatencyProbe probe;
  double now = 0;
  probe.now = &now;
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR1, num_inputs, &probe);

  struct Feed : ElementSink {
    MergeAlgorithm* algo;
    int id;
    void OnElement(const StreamElement& e) override {
      LM_CHECK(algo->OnElement(id, e).ok());
    }
  };
  std::vector<std::unique_ptr<Cleanse>> cleanses;
  std::vector<std::unique_ptr<Feed>> feeds;
  for (int s = 0; s < num_inputs; ++s) {
    cleanses.push_back(
        std::make_unique<Cleanse>("cleanse" + std::to_string(s)));
    feeds.push_back(std::make_unique<Feed>());
    feeds.back()->algo = algo.get();
    feeds.back()->id = s;
    cleanses.back()->AddSink(feeds.back().get());
  }
  return DeliverByArrival(
      inputs, &now, &probe,
      [&cleanses](int s, const StreamElement& e) {
        cleanses[static_cast<size_t>(s)]->Consume(0, e);
      },
      [&cleanses, &algo] {
        int64_t bytes = algo->StateBytes();
        for (const auto& cleanse : cleanses) bytes += cleanse->StateBytes();
        return bytes;
      });
}

void Fig7(benchmark::State& state, int mode) {
  const int num_inputs = static_cast<int>(state.range(0));
  const std::vector<ElementSequence> inputs = Replicas(num_inputs);
  RunStats stats;
  for (auto _ : state) {
    switch (mode) {
      case 0:
        stats = RunDirect(MergeVariant::kLMR3Plus, num_inputs, inputs);
        break;
      case 1:
        stats = RunDirect(MergeVariant::kLMR3Minus, num_inputs, inputs);
        break;
      default:
        stats = RunCleansed(num_inputs, inputs);
    }
  }
  state.SetItemsProcessed(stats.delivered * state.iterations());
  state.counters["inputs"] = benchmark::Counter(num_inputs);
  state.counters["peak_bytes"] =
      benchmark::Counter(static_cast<double>(stats.peak_bytes));
  state.counters["mean_latency_s"] = benchmark::Counter(stats.mean_latency);
}

void BM_Fig7_LMR3Plus(benchmark::State& state) { Fig7(state, 0); }
void BM_Fig7_LMR3Minus(benchmark::State& state) { Fig7(state, 1); }
void BM_Fig7_CleansePlusLMR1(benchmark::State& state) { Fig7(state, 2); }

BENCHMARK(BM_Fig7_LMR3Plus)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7_LMR3Minus)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig7_CleansePlusLMR1)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
