// State bytes under payload interning — the memory claim of the end-to-end
// interned-payload refactor, on the paper's general-case workload.
//
// Three divergent physical replicas of one logical history are merged by
// LMR3+ (in2t), LMR3- (per-input deep copies), and LMR4 (in3t).  Payloads
// are drawn from a small pool, the shape that recurs in practice (sensor
// enumerations, templated messages) and that interning collapses: R3/R4
// charge each pooled rep once per index via the identity ledger, while the
// LMR3- baseline duplicates it per input as the paper assumes.
//
// Each variant reports two figures:
//   BM_StateBytes_<V>          peak StateBytes() — interned accounting
//   BM_StateBytes_<V>_Unshared peak StateBytesUnshared() — the pre-interning
//                              per-node-copy model, for the before/after
//                              comparison (expected >= 2x for LMR3+).
//
// Reported counter: state_bytes (peak, sampled every 512 deliveries).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

constexpr int kNumReplicas = 3;

const workload::LogicalHistory& History() {
  static const workload::LogicalHistory* history = [] {
    workload::GeneratorConfig config = PaperConfig(20000);
    // Pooled payloads: 64 distinct blobs recur across the whole history,
    // so sharing (and the wire dictionary) has something to collapse.
    config.payload_pool_size = 64;
    auto* h =
        new workload::LogicalHistory(workload::GenerateHistory(config));
    return h;
  }();
  return *history;
}

const std::vector<ElementSequence>& Replicas() {
  static const std::vector<ElementSequence>* replicas = [] {
    return new std::vector<ElementSequence>(MakeReplicas(
        History(), kNumReplicas, /*disorder=*/0.2,
        /*split_probability=*/0.3, /*seed=*/1234));
  }();
  return *replicas;
}

// Round-robin delivery sampling both accounting models; returns peaks.
struct PeakBytes {
  int64_t shared = 0;
  int64_t unshared = 0;
};

PeakBytes RoundRobinPeakBoth(MergeAlgorithm* algo,
                             const std::vector<ElementSequence>& inputs,
                             int64_t sample_every = 512) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  PeakBytes peak;
  int64_t delivered = 0;
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i >= inputs[s].size()) continue;
      const Status status =
          algo->OnElement(static_cast<int>(s), inputs[s][i]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      if (++delivered % sample_every == 0) {
        peak.shared = std::max(peak.shared, algo->StateBytes());
        peak.unshared = std::max(peak.unshared, algo->StateBytesUnshared());
      }
    }
  }
  peak.shared = std::max(peak.shared, algo->StateBytes());
  peak.unshared = std::max(peak.unshared, algo->StateBytesUnshared());
  return peak;
}

void StateBytesBench(benchmark::State& state, MergeVariant variant,
                     bool unshared) {
  PeakBytes peak;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, kNumReplicas, &sink);
    peak = RoundRobinPeakBoth(algo.get(), Replicas());
    benchmark::DoNotOptimize(peak);
  }
  state.counters["state_bytes"] = benchmark::Counter(
      static_cast<double>(unshared ? peak.unshared : peak.shared));
  state.counters["inputs"] = benchmark::Counter(kNumReplicas);
}

#define STATE_BYTES_BENCH(variant_enum, name)                             \
  void BM_StateBytes_##name(benchmark::State& state) {                    \
    StateBytesBench(state, MergeVariant::variant_enum, false);            \
  }                                                                       \
  BENCHMARK(BM_StateBytes_##name)->Iterations(1)->Unit(                   \
      benchmark::kMillisecond);                                           \
  void BM_StateBytes_##name##_Unshared(benchmark::State& state) {         \
    StateBytesBench(state, MergeVariant::variant_enum, true);             \
  }                                                                       \
  BENCHMARK(BM_StateBytes_##name##_Unshared)                              \
      ->Iterations(1)                                                     \
      ->Unit(benchmark::kMillisecond)

STATE_BYTES_BENCH(kLMR3Plus, LMR3Plus);
STATE_BYTES_BENCH(kLMR3Minus, LMR3Minus);
STATE_BYTES_BENCH(kLMR4, LMR4);

#undef STATE_BYTES_BENCH

}  // namespace
}  // namespace lmerge::bench

int main(int argc, char** argv) {
  return lmerge::bench::RunBenchmarksWithJson(argc, argv);
}
