// Shared workload configuration for the per-figure benchmark harnesses.
//
// Defaults mirror Sec. VI-B: each event carries an integer in [0, 400] and a
// 1000-byte string; StableFreq defaults to 1%; lifetimes are set so that on
// the order of 10K events are "active" at any instant; MaxGap bounds the
// application-time gap between consecutive elements; Disorder defaults to
// 20%.  Scale (number of elements) is reduced relative to the paper's
// 200K-400K so that every figure regenerates in seconds; shapes are
// unaffected.

#ifndef LMERGE_BENCH_BENCH_UTIL_H_
#define LMERGE_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/element.h"
#include "workload/generator.h"

namespace lmerge::bench {

inline workload::GeneratorConfig PaperConfig(int64_t num_inserts,
                                             uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_inserts = num_inserts;
  config.stable_freq = 0.01;           // StableFreq 1%
  config.max_gap = 20;                 // ticks between consecutive starts
  config.event_duration = 100000;      // ~10K active events at a time
  config.duration_jitter = 20000;
  config.disorder_fraction = 0.2;      // 20% disorder
  config.max_disorder_elements = 64;
  config.key_range = 400;              // int field in [0, 400]
  config.payload_string_bytes = 1000;  // 1000-byte string field
  config.seed = seed;
  return config;
}

// The divergent physical replicas fed to LMerge in the general-case
// experiments.
inline std::vector<ElementSequence> MakeReplicas(
    const workload::LogicalHistory& history, int count, double disorder,
    double split_probability, uint64_t seed) {
  std::vector<ElementSequence> replicas;
  replicas.reserve(static_cast<size_t>(count));
  for (int v = 0; v < count; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = disorder;
    options.max_disorder_elements = 64;
    options.split_probability = split_probability;
    options.seed = seed + static_cast<uint64_t>(v) * 977;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  return replicas;
}

// Round-robin delivery of `inputs` into `algo`; samples StateBytes every
// `sample_every` deliveries and returns the peak.
inline int64_t RoundRobinPeakMemory(MergeAlgorithm* algo,
                                    const std::vector<ElementSequence>& inputs,
                                    int64_t sample_every = 512) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  int64_t peak = 0;
  int64_t delivered = 0;
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i >= inputs[s].size()) continue;
      const Status status =
          algo->OnElement(static_cast<int>(s), inputs[s][i]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      if (++delivered % sample_every == 0) {
        peak = std::max(peak, algo->StateBytes());
      }
    }
  }
  peak = std::max(peak, algo->StateBytes());
  return peak;
}

// Round-robin delivery; returns total elements delivered.
inline int64_t RoundRobinDeliver(MergeAlgorithm* algo,
                                 const std::vector<ElementSequence>& inputs) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  int64_t delivered = 0;
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i >= inputs[s].size()) continue;
      const Status status =
          algo->OnElement(static_cast<int>(s), inputs[s][i]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      ++delivered;
    }
  }
  return delivered;
}

// ---------------------------------------------------------------------------
// Machine-readable results (--json) for the CI bench-smoke job.
//
// Benchmarks publish optional metrics through counters named "p50_us",
// "p99_us", and "state_bytes"; RunBenchmarksWithJson tees every run into a
// JSON array written to the path given by `--json PATH` (or `--json=PATH`)
// alongside the normal console output.  Schema per entry:
//   {"name", "elems_per_sec", "p50_latency_us", "p99_latency_us",
//    "state_bytes"}
// ---------------------------------------------------------------------------

// Collects sampled per-operation durations and publishes the percentile
// counters the JSON writer picks up.
class LatencySampler {
 public:
  using Clock = std::chrono::steady_clock;

  void Record(Clock::time_point start, Clock::time_point end) {
    samples_.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
  }

  double PercentileUs(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    return sorted[lo] + (sorted[hi] - sorted[lo]) *
                            (rank - static_cast<double>(lo));
  }

  void Publish(benchmark::State& state) const {
    state.counters["p50_us"] = benchmark::Counter(PercentileUs(50));
    state.counters["p99_us"] = benchmark::Counter(PercentileUs(99));
  }

 private:
  std::vector<double> samples_;
};

struct BenchJsonEntry {
  std::string name;
  double elems_per_sec = 0;
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  int64_t state_bytes = 0;
  // Fan-out accounting (bench_fanout_scale): bytes the server serialized
  // once per merged batch vs. bytes actually sent across all subscribers.
  int64_t encoded_bytes = 0;
  int64_t tx_fanout_bytes = 0;
};

// Console output as usual, plus a copy of every run's metrics for the JSON
// file.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const auto counter = [&run](const char* key) {
        const auto it = run.counters.find(key);
        return it == run.counters.end()
                   ? 0.0
                   : static_cast<double>(it->second);
      };
      BenchJsonEntry entry;
      entry.name = run.benchmark_name();
      entry.elems_per_sec = counter("items_per_second");
      entry.p50_latency_us = counter("p50_us");
      entry.p99_latency_us = counter("p99_us");
      entry.state_bytes = static_cast<int64_t>(counter("state_bytes"));
      entry.encoded_bytes = static_cast<int64_t>(counter("encoded_bytes"));
      entry.tx_fanout_bytes =
          static_cast<int64_t>(counter("tx_fanout_bytes"));
      entries_.push_back(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchJsonEntry>& entries() const { return entries_; }

 private:
  std::vector<BenchJsonEntry> entries_;
};

// Benchmark names are user-controlled (template args, Args() values), so
// the document goes through JsonWriter: names with quotes/backslashes stay
// valid JSON and keys always appear in this fixed order.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<BenchJsonEntry>& entries) {
  JsonWriter writer;
  writer.BeginArray();
  for (const BenchJsonEntry& e : entries) {
    writer.BeginObject();
    writer.Key("name");
    writer.String(e.name);
    writer.Key("elems_per_sec");
    writer.Double(e.elems_per_sec);
    writer.Key("p50_latency_us");
    writer.Double(e.p50_latency_us);
    writer.Key("p99_latency_us");
    writer.Double(e.p99_latency_us);
    writer.Key("state_bytes");
    writer.Int(e.state_bytes);
    writer.Key("encoded_bytes");
    writer.Int(e.encoded_bytes);
    writer.Key("tx_fanout_bytes");
    writer.Int(e.tx_fanout_bytes);
    writer.EndObject();
  }
  writer.EndArray();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = writer.Take();
  std::fprintf(file, "%s\n", json.c_str());
  std::fclose(file);
  return true;
}

// Drop-in replacement for BENCHMARK_MAIN(): the standard benchmark CLI plus
//   --json=PATH       tee per-run metrics into a JSON array
//   --obs=on|off|trace  metrics registry on (default), off (the overhead
//                     A/B baseline used by the CI bench-obs-smoke job), or
//                     on with span tracing as well
//   --trace-out=PATH  dump the recorded spans as Chrome trace JSON on exit
inline int RunBenchmarksWithJson(int argc, char** argv) {
  std::string json_path;
  std::string obs_mode = "on";
  std::string trace_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--obs=", 0) == 0) {
      obs_mode = arg.substr(6);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (obs_mode != "on" && obs_mode != "off" && obs_mode != "trace") {
    std::fprintf(stderr, "--obs must be on, off, or trace\n");
    return 1;
  }
  obs::MetricsRegistry::set_enabled(obs_mode != "off");
  obs::TraceRecorder::Global().set_enabled(obs_mode == "trace" ||
                                           !trace_path.empty());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !WriteBenchJson(json_path, reporter.entries())) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (!trace_path.empty()) {
    std::FILE* file = std::fopen(trace_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    const std::string trace =
        obs::TraceRecorder::Global().DumpChromeTraceJson();
    std::fprintf(file, "%s\n", trace.c_str());
    std::fclose(file);
  }
  return 0;
}

}  // namespace lmerge::bench

#endif  // LMERGE_BENCH_BENCH_UTIL_H_
