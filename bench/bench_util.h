// Shared workload configuration for the per-figure benchmark harnesses.
//
// Defaults mirror Sec. VI-B: each event carries an integer in [0, 400] and a
// 1000-byte string; StableFreq defaults to 1%; lifetimes are set so that on
// the order of 10K events are "active" at any instant; MaxGap bounds the
// application-time gap between consecutive elements; Disorder defaults to
// 20%.  Scale (number of elements) is reduced relative to the paper's
// 200K-400K so that every figure regenerates in seconds; shapes are
// unaffected.

#ifndef LMERGE_BENCH_BENCH_UTIL_H_
#define LMERGE_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/factory.h"
#include "stream/element.h"
#include "workload/generator.h"

namespace lmerge::bench {

inline workload::GeneratorConfig PaperConfig(int64_t num_inserts,
                                             uint64_t seed = 42) {
  workload::GeneratorConfig config;
  config.num_inserts = num_inserts;
  config.stable_freq = 0.01;           // StableFreq 1%
  config.max_gap = 20;                 // ticks between consecutive starts
  config.event_duration = 100000;      // ~10K active events at a time
  config.duration_jitter = 20000;
  config.disorder_fraction = 0.2;      // 20% disorder
  config.max_disorder_elements = 64;
  config.key_range = 400;              // int field in [0, 400]
  config.payload_string_bytes = 1000;  // 1000-byte string field
  config.seed = seed;
  return config;
}

// The divergent physical replicas fed to LMerge in the general-case
// experiments.
inline std::vector<ElementSequence> MakeReplicas(
    const workload::LogicalHistory& history, int count, double disorder,
    double split_probability, uint64_t seed) {
  std::vector<ElementSequence> replicas;
  replicas.reserve(static_cast<size_t>(count));
  for (int v = 0; v < count; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = disorder;
    options.max_disorder_elements = 64;
    options.split_probability = split_probability;
    options.seed = seed + static_cast<uint64_t>(v) * 977;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  return replicas;
}

// Round-robin delivery of `inputs` into `algo`; samples StateBytes every
// `sample_every` deliveries and returns the peak.
inline int64_t RoundRobinPeakMemory(MergeAlgorithm* algo,
                                    const std::vector<ElementSequence>& inputs,
                                    int64_t sample_every = 512) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  int64_t peak = 0;
  int64_t delivered = 0;
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i >= inputs[s].size()) continue;
      const Status status =
          algo->OnElement(static_cast<int>(s), inputs[s][i]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      if (++delivered % sample_every == 0) {
        peak = std::max(peak, algo->StateBytes());
      }
    }
  }
  peak = std::max(peak, algo->StateBytes());
  return peak;
}

// Round-robin delivery; returns total elements delivered.
inline int64_t RoundRobinDeliver(MergeAlgorithm* algo,
                                 const std::vector<ElementSequence>& inputs) {
  size_t max_len = 0;
  for (const auto& input : inputs) max_len = std::max(max_len, input.size());
  int64_t delivered = 0;
  for (size_t i = 0; i < max_len; ++i) {
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i >= inputs[s].size()) continue;
      const Status status =
          algo->OnElement(static_cast<int>(s), inputs[s][i]);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace lmerge::bench

#endif  // LMERGE_BENCH_BENCH_UTIL_H_
