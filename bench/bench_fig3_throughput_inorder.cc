// Figure 3 — Throughput vs. number of input streams, in-order insert-only
// inputs, all LMerge variants.
//
// Paper shape: the simpler algorithms (LMR0/LMR1/LMR2) are fastest; LMR3+
// clearly beats LMR3- thanks to the optimized in2t data structure; LMR4 is
// the slowest general variant.
//
// Reported counter: merged input elements per second.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

const workload::LogicalHistory& History() {
  static const workload::LogicalHistory* history = [] {
    return new workload::LogicalHistory(
        workload::GenerateHistory(PaperConfig(20000)));
  }();
  return *history;
}

void ThroughputInOrder(benchmark::State& state, MergeVariant variant) {
  const int num_inputs = static_cast<int>(state.range(0));
  const ElementSequence stream = workload::RenderInOrder(History());
  std::vector<ElementSequence> inputs(static_cast<size_t>(num_inputs),
                                      stream);
  int64_t delivered = 0;
  int64_t state_bytes = 0;
  LatencySampler latency;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, num_inputs, &sink);
    // Same round-robin as RoundRobinDeliver, with sampled per-element
    // latency for the --json report.
    size_t max_len = 0;
    for (const auto& input : inputs) max_len = std::max(max_len, input.size());
    int64_t count = 0;
    for (size_t i = 0; i < max_len; ++i) {
      for (size_t s = 0; s < inputs.size(); ++s) {
        if (i >= inputs[s].size()) continue;
        const bool sampled = (count++ & 63) == 0;
        const auto start = LatencySampler::Clock::now();
        const Status status =
            algo->OnElement(static_cast<int>(s), inputs[s][i]);
        if (sampled) latency.Record(start, LatencySampler::Clock::now());
        LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      }
    }
    delivered += count;
    state_bytes = algo->StateBytes();
  }
  state.SetItemsProcessed(delivered);
  latency.Publish(state);
  state.counters["state_bytes"] =
      benchmark::Counter(static_cast<double>(state_bytes));
  state.counters["inputs"] = benchmark::Counter(num_inputs);
}

#define FIG3_BENCH(variant_enum, name)                                   \
  void BM_Fig3_##name(benchmark::State& state) {                        \
    ThroughputInOrder(state, MergeVariant::variant_enum);               \
  }                                                                      \
  BENCHMARK(BM_Fig3_##name)->DenseRange(2, 10, 4)->Unit(benchmark::kMillisecond)

FIG3_BENCH(kLMR0, LMR0);
FIG3_BENCH(kLMR1, LMR1);
FIG3_BENCH(kLMR2, LMR2);
FIG3_BENCH(kLMR3Plus, LMR3Plus);
FIG3_BENCH(kLMR3Minus, LMR3Minus);
FIG3_BENCH(kLMR4, LMR4);

}  // namespace
}  // namespace lmerge::bench

int main(int argc, char** argv) {
  return lmerge::bench::RunBenchmarksWithJson(argc, argv);
}
