// Figure 3 — Throughput vs. number of input streams, in-order insert-only
// inputs, all LMerge variants.
//
// Paper shape: the simpler algorithms (LMR0/LMR1/LMR2) are fastest; LMR3+
// clearly beats LMR3- thanks to the optimized in2t data structure; LMR4 is
// the slowest general variant.
//
// Reported counter: merged input elements per second.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

const workload::LogicalHistory& History() {
  static const workload::LogicalHistory* history = [] {
    return new workload::LogicalHistory(
        workload::GenerateHistory(PaperConfig(20000)));
  }();
  return *history;
}

void ThroughputInOrder(benchmark::State& state, MergeVariant variant) {
  const int num_inputs = static_cast<int>(state.range(0));
  const ElementSequence stream = workload::RenderInOrder(History());
  std::vector<ElementSequence> inputs(static_cast<size_t>(num_inputs),
                                      stream);
  int64_t delivered = 0;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, num_inputs, &sink);
    delivered += RoundRobinDeliver(algo.get(), inputs);
  }
  state.SetItemsProcessed(delivered);
  state.counters["inputs"] = benchmark::Counter(num_inputs);
}

#define FIG3_BENCH(variant_enum, name)                                   \
  void BM_Fig3_##name(benchmark::State& state) {                        \
    ThroughputInOrder(state, MergeVariant::variant_enum);               \
  }                                                                      \
  BENCHMARK(BM_Fig3_##name)->DenseRange(2, 10, 4)->Unit(benchmark::kMillisecond)

FIG3_BENCH(kLMR0, LMR0);
FIG3_BENCH(kLMR1, LMR1);
FIG3_BENCH(kLMR2, LMR2);
FIG3_BENCH(kLMR3Plus, LMR3Plus);
FIG3_BENCH(kLMR3Minus, LMR3Minus);
FIG3_BENCH(kLMR4, LMR4);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
