// Fan-out scaling: one publisher, N subscribers, measuring what the
// serialize-once fan-out actually costs as N grows.
//
// Every same-protocol subscriber shares one immutable encoded frame per
// merged batch (net/server.cc FanOutBatchLocked), so the per-batch encode
// cost — net.fanout.encoded_bytes — must be FLAT in the subscriber count:
// the 256-subscriber figure equals the 16-subscriber figure.  What scales
// linearly is only the transport hand-off, net.tx.fanout.bytes ≈
// N * encoded_bytes.  The CI bench-fanout-smoke job asserts exactly that
// from the --json output (docs/PERFORMANCE.md "Fan-out scaling").
//
// Loopback direct-drive, like bench_net_throughput: no sockets, no
// scheduler noise — the counters isolate the encode path itself.
//
// Reported counters (per iteration):
//   encoded_bytes    bytes serialized by the fan-out (once per batch)
//   tx_fanout_bytes  bytes enqueued across all subscriber connections
//   subscribers      N

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "net/loopback.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/latency.h"
#include "properties/runtime_stats.h"

namespace lmerge::bench {
namespace {

// Small payloads and a short tape: with 1024 subscribers the drain loop is
// O(frames * N), and the encode-cost story does not need a long stream.
workload::GeneratorConfig FanOutConfig(int64_t num_inserts) {
  workload::GeneratorConfig config = PaperConfig(num_inserts);
  config.payload_string_bytes = 16;
  return config;
}

const ElementSequence& PublisherTape() {
  static const ElementSequence* tape = [] {
    const workload::LogicalHistory history =
        workload::GenerateHistory(FanOutConfig(5000));
    return new ElementSequence(
        MakeReplicas(history, 1, /*disorder=*/0.0, /*split_probability=*/0.0,
                     /*seed=*/7)[0]);
  }();
  return *tape;
}

void BM_FanOutScale(benchmark::State& state) {
  const int num_subscribers = static_cast<int>(state.range(0));
  const ElementSequence& tape = PublisherTape();

  StreamStatsCollector collector;
  for (const StreamElement& element : tape) collector.Observe(element);
  net::HelloMessage pub_hello;
  pub_hello.role = net::PeerRole::kPublisher;
  pub_hello.properties = collector.ObservedProperties();
  pub_hello.peer_name = "bench-publisher";
  const std::string pub_hello_frame = net::EncodeHelloFrame(pub_hello);

  net::HelloMessage sub_hello;
  sub_hello.role = net::PeerRole::kSubscriber;
  const std::string sub_hello_frame = net::EncodeHelloFrame(sub_hello);

  std::vector<std::string> frames;
  constexpr size_t kBatch = 64;
  for (size_t i = 0; i < tape.size(); i += kBatch) {
    const ElementSequence batch(
        tape.begin() + static_cast<ElementSequence::difference_type>(i),
        tape.begin() + static_cast<ElementSequence::difference_type>(
                           std::min(i + kBatch, tape.size())));
    // v5 sessions expect the trailing origin stamp on batch frames.
    frames.push_back(net::EncodeElementsFrame(batch, obs::MonotonicMicros()));
  }

  int64_t delivered = 0;
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    net::MergeServer server;
    std::vector<std::unique_ptr<net::Connection>> ends;
    ends.reserve(static_cast<size_t>(num_subscribers) * 2);
    for (int s = 0; s < num_subscribers; ++s) {
      auto [client, server_end] = net::CreateLoopbackPair();
      const int id = server.OnConnect(server_end.get());
      const Status status = server.OnBytes(id, sub_hello_frame);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      ends.push_back(std::move(client));
      ends.push_back(std::move(server_end));
    }
    auto [client, server_end] = net::CreateLoopbackPair();
    const int publisher = server.OnConnect(server_end.get());
    LM_CHECK(server.OnBytes(publisher, pub_hello_frame).ok());
    for (const std::string& frame : frames) {
      const Status status = server.OnBytes(publisher, frame);
      LM_CHECK_MSG(status.ok(), "%s", status.ToString().c_str());
      // Keep subscriber loopback queues bounded.
      for (size_t e = 0; e < ends.size(); e += 2) {
        std::string discard;
        (void)ends[e]->TryReceive(&discard);
      }
    }
    // Fan-out happens on the merge thread; quiesce inside the timed region.
    server.Flush();
    delivered += static_cast<int64_t>(tape.size());
  }
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::Global().Snapshot();
  const double iters = static_cast<double>(state.iterations());
  const auto per_iter = [&](const std::string& name) {
    return static_cast<double>(after.Value(name) - before.Value(name)) /
           iters;
  };
  state.SetItemsProcessed(delivered);
  state.counters["subscribers"] =
      benchmark::Counter(static_cast<double>(num_subscribers));
  state.counters["encoded_bytes"] =
      benchmark::Counter(per_iter("net.fanout.encoded_bytes"));
  state.counters["encoded_frames"] =
      benchmark::Counter(per_iter("net.fanout.encoded_frames"));
  state.counters["tx_fanout_bytes"] =
      benchmark::Counter(per_iter("net.tx.fanout.bytes"));
}

BENCHMARK(BM_FanOutScale)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace lmerge::bench

int main(int argc, char** argv) {
  return lmerge::bench::RunBenchmarksWithJson(argc, argv);
}
