// Figure 9 — Masking network congestion (Sec. VI-E.2).
//
// Three replica streams at 5000 elements/sec.  Each suffers a congestion
// window at a different time (normally distributed extra per-element
// delays), producing a throughput trough then a catch-up spike.  Around
// t=18 s two of the streams are congested *simultaneously*; LMerge remains
// unaffected as long as one input is healthy.
//
// Output: one row per 0.25 s — per-input arrival rates and the LMerge output
// rate (the four series of the paper's Fig. 9).

#include <cstdio>

#include "bench_util.h"
#include "engine/delay.h"
#include "engine/simulator.h"
#include "operators/operator.h"

namespace lmerge::bench {
namespace {

class MergeEntry : public Operator {
 public:
  MergeEntry(MergeAlgorithm* algo, int inputs)
      : Operator("merge", inputs), algo_(algo) {}

 protected:
  void OnElement(int port, const StreamElement& element) override {
    LM_CHECK(algo_->OnElement(port, element).ok());
  }

 private:
  MergeAlgorithm* algo_;
};

class Tap : public Operator {
 public:
  Tap(Operator* next, int port, ElementSink* probe)
      : Operator("tap", 1), next_(next), port_(port), probe_(probe) {}

 protected:
  void OnElement(int port, const StreamElement& element) override {
    (void)port;
    probe_->OnElement(element);
    next_->Consume(port_, element);
  }

 private:
  Operator* next_;
  int port_;
  ElementSink* probe_;
};

int Main() {
  constexpr int kInputs = 3;
  constexpr double kRate = 5000.0;
  constexpr double kBucket = 0.25;

  workload::GeneratorConfig config = PaperConfig(120000, 15);
  config.payload_string_bytes = 16;
  config.event_duration = 50000;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);
  const std::vector<ElementSequence> replicas =
      MakeReplicas(history, kInputs, /*disorder=*/0.2, /*split=*/0.0, 55);

  Simulator sim;
  ThroughputRecorder merged_rate(&sim, kBucket);
  std::vector<std::unique_ptr<ThroughputRecorder>> input_rates;
  for (int r = 0; r < kInputs; ++r) {
    input_rates.push_back(
        std::make_unique<ThroughputRecorder>(&sim, kBucket));
  }

  auto algo =
      CreateMergeAlgorithm(MergeVariant::kLMR3Plus, kInputs, &merged_rate);
  MergeEntry entry(algo.get(), kInputs);
  std::vector<std::unique_ptr<Tap>> taps;
  for (int r = 0; r < kInputs; ++r) {
    taps.push_back(std::make_unique<Tap>(&entry, r,
                                         input_rates[static_cast<size_t>(r)]
                                             .get()));
  }

  // Congestion windows: stream 0 at [4,7), stream 1 at [11,14) and [17,19),
  // stream 2 at [18,20) — the overlap around 18 s matches the paper's note.
  const std::vector<std::vector<CongestionWindow>> windows = {
      {{4.0, 7.0, 0.0006, 0.0002}},
      {{11.0, 14.0, 0.0006, 0.0002}, {17.0, 19.0, 0.0006, 0.0002}},
      {{18.0, 20.0, 0.0006, 0.0002}},
  };
  for (int r = 0; r < kInputs; ++r) {
    CongestionConfig congestion;
    congestion.rate = kRate;
    congestion.windows = windows[static_cast<size_t>(r)];
    congestion.seed = 300 + static_cast<uint64_t>(r);
    sim.AddInput(taps[static_cast<size_t>(r)].get(), 0,
                 ScheduleCongestion(replicas[static_cast<size_t>(r)],
                                    congestion));
  }
  sim.Run();

  std::printf("# Figure 9: masking network congestion (LMR3+ over %d "
              "replicas @ %.0f ev/s)\n",
              kInputs, kRate);
  std::printf("%-10s %-14s %-14s %-14s %-16s\n", "time_s", "input0_ev_s",
              "input1_ev_s", "input2_ev_s", "lmerge_out_ev_s");
  const auto out_series = merged_rate.RatePerSecond();
  size_t n = out_series.size();
  for (const auto& rate : input_rates) {
    n = std::max(n, rate->RatePerSecond().size());
  }
  for (size_t b = 0; b + 1 < n; ++b) {
    auto at = [b](const std::vector<double>& v) {
      return b < v.size() ? v[b] : 0.0;
    };
    std::printf("%-10.1f %-14.0f %-14.0f %-14.0f %-16.0f\n",
                static_cast<double>(b) * kBucket,
                at(input_rates[0]->RatePerSecond()),
                at(input_rates[1]->RatePerSecond()),
                at(input_rates[2]->RatePerSecond()), at(out_series));
  }
  return 0;
}

}  // namespace
}  // namespace lmerge::bench

int main() { return lmerge::bench::Main(); }
