// Figure 8 — Handling bursty data (Sec. VI-E.1).
//
// Four replica streams at an average 5000 elements/sec with 20% disorder;
// each stream occasionally stalls (probability 0.3-0.5% per element, stall
// length ~ truncated normal, mean 20 ms, stddev 5 ms), producing queue
// build-up and compensating spikes.  LMerge follows whichever input is
// healthy at each instant.
//
// Output: one row per 0.1 s of virtual time — the throughput of input
// stream 0 (bursty) and of the LMerge output (smooth).  The paper's Fig. 8
// plots exactly these two series.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "engine/delay.h"
#include "engine/simulator.h"
#include "operators/operator.h"

namespace lmerge::bench {
namespace {

// Thin operator wrapper so replicas can be fed through the Simulator.
class MergeEntry : public Operator {
 public:
  MergeEntry(MergeAlgorithm* algo, int inputs)
      : Operator("merge", inputs), algo_(algo) {}

 protected:
  void OnElement(int port, const StreamElement& element) override {
    LM_CHECK(algo_->OnElement(port, element).ok());
  }

 private:
  MergeAlgorithm* algo_;
};

int Main() {
  constexpr int kInputs = 4;
  constexpr double kRate = 5000.0;
  constexpr double kBucket = 0.1;

  workload::GeneratorConfig config = PaperConfig(60000, 8);
  config.stable_freq = 0.01;
  config.event_duration = 50000;
  config.payload_string_bytes = 16;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);
  const std::vector<ElementSequence> replicas =
      MakeReplicas(history, kInputs, /*disorder=*/0.2, /*split=*/0.0, 77);

  Simulator sim;
  ThroughputRecorder merged_rate(&sim, kBucket);
  ThroughputRecorder input0_rate(&sim, kBucket);

  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, kInputs,
                                   &merged_rate);
  MergeEntry entry(algo.get(), kInputs);

  // Probe operator mirroring input 0's arrivals into its own recorder.
  class Tap : public Operator {
   public:
    Tap(Operator* next, int port, ElementSink* probe)
        : Operator("tap", 1), next_(next), port_(port), probe_(probe) {}

   protected:
    void OnElement(int port, const StreamElement& element) override {
      (void)port;
      probe_->OnElement(element);
      next_->Consume(port_, element);
    }

   private:
    Operator* next_;
    int port_;
    ElementSink* probe_;
  };
  Tap tap(&entry, 0, &input0_rate);

  for (int r = 0; r < kInputs; ++r) {
    BurstConfig burst;
    burst.rate = kRate;
    burst.stall_probability = 0.003 + 0.0005 * r;  // 0.3% .. 0.45%
    burst.stall_mean_seconds = 0.020;
    burst.stall_stddev_seconds = 0.005;
    burst.seed = 100 + static_cast<uint64_t>(r);
    TimedStream stream =
        ScheduleBursty(replicas[static_cast<size_t>(r)], burst);
    if (r == 0) {
      sim.AddInput(&tap, 0, std::move(stream));
    } else {
      sim.AddInput(&entry, r, std::move(stream));
    }
  }
  sim.Run();

  std::printf("# Figure 8: handling bursty streams (LMR3+ over %d bursty "
              "replicas @ %.0f ev/s)\n",
              kInputs, kRate);
  std::printf("%-12s %-22s %-22s\n", "time_s", "input0_events_per_s",
              "lmerge_out_events_per_s");
  const auto in_series = input0_rate.RatePerSecond();
  const auto out_series = merged_rate.RatePerSecond();
  const size_t n = std::max(in_series.size(), out_series.size());
  double in_min = 1e18;
  double out_min = 1e18;
  for (size_t b = 0; b + 1 < n; ++b) {  // drop the ragged last bucket
    const double in_rate = b < in_series.size() ? in_series[b] : 0;
    const double out_rate = b < out_series.size() ? out_series[b] : 0;
    std::printf("%-12.2f %-22.0f %-22.0f\n",
                static_cast<double>(b) * kBucket, in_rate, out_rate);
    in_min = std::min(in_min, in_rate);
    out_min = std::min(out_min, out_rate);
  }
  std::printf("# min input0 bucket rate: %.0f ev/s; min LMerge bucket "
              "rate: %.0f ev/s (higher = smoother)\n",
              in_min, out_min);
  return 0;
}

}  // namespace
}  // namespace lmerge::bench

int main() { return lmerge::bench::Main(); }
