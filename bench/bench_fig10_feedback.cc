// Figure 10 — Dynamic plan switching with fast-forward (Sec. VI-E.3).
//
// Two alternative plans for the same selection query: UDF0 is expensive for
// small values of payload field X, UDF1 for large values.  The input
// alternates batches of low-X and high-X elements (batch size random in
// [4K, 12K]), so the "optimal" plan switches repeatedly.  Each plan runs on
// its own (simulated) machine: per round, every plan gets an equal work
// budget; the plan that is currently suboptimal falls behind and queues.
//
// Four configurations, as in the paper:
//   UDF0 / UDF1 alone        — single-plan baselines;
//   LMerge (no feedback)     — merges both plans but saves no work;
//   LMerge + feedback        — fast-forwards the lagging plan past elements
//                              that can no longer matter.
//
// Reported: makespan in simulated work rounds plus per-plan UDF work.
// Paper shape: LMerge alone ~ the single-plan time; LM+Feedback several
// times faster (~5x in the paper).

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "core/lmerge_operator.h"
#include "operators/select.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

constexpr int64_t kCheap = 2;
constexpr int64_t kExpensive = 200;
// Fixed per-element pipeline cost (dequeue, routing, merge bookkeeping) that
// fast-forwarding cannot eliminate; bounds the attainable speedup like the
// engine overheads in the paper's testbed.
constexpr int64_t kPipelineCost = 15;
constexpr int64_t kRoundBudget = 40000;  // work units per plan per round

ElementSequence AlternatingBatches(int64_t total) {
  Rng rng(12);
  ElementSequence out;
  out.reserve(static_cast<size_t>(total) + 700);
  Timestamp now = 0;
  bool low = true;
  int64_t produced = 0;
  while (produced < total) {
    const int64_t batch = rng.UniformInt(4000, 12000);
    for (int64_t i = 0; i < batch && produced < total; ++i, ++produced) {
      ++now;
      const int64_t x = low ? rng.UniformInt(0, 199) : rng.UniformInt(200, 400);
      out.push_back(StreamElement::Insert(Row::OfInt(x), now, now + 100));
      if (produced % 100 == 99) {
        out.push_back(StreamElement::Stable(now + 1));
      }
    }
    low = !low;
  }
  out.push_back(StreamElement::Stable(now + 200));
  return out;
}

int64_t Udf0Cost(const Row& row) {
  return row.field(0).AsInt64() < 200 ? kExpensive : kCheap;
}
int64_t Udf1Cost(const Row& row) {
  return row.field(0).AsInt64() < 200 ? kCheap : kExpensive;
}

struct RunResult {
  int64_t rounds = 0;
  int64_t work0 = 0;
  int64_t work1 = 0;
  int64_t skipped0 = 0;
  int64_t skipped1 = 0;
  int64_t merged_inserts = 0;
};

// Feeds the stream through one or two plans with per-round work budgets.
// `use_plan0` / `use_plan1` select the configuration; feedback is wired when
// `feedback` is true.
RunResult Run(const ElementSequence& stream, bool use_plan0, bool use_plan1,
              bool feedback) {
  const auto pass = [](const Row&) { return true; };
  UdfSelect plan0("udf0", pass, Udf0Cost);
  UdfSelect plan1("udf1", pass, Udf1Cost);
  const int inputs = (use_plan0 ? 1 : 0) + (use_plan1 ? 1 : 0);
  LMergeOperator lm("lm", inputs, MergeVariant::kLMR3Plus,
                    MergePolicy::Default(), feedback);
  CountingSink merged;
  lm.AddSink(&merged);
  int port = 0;
  if (use_plan0) plan0.AddDownstream(&lm, port++);
  if (use_plan1) plan1.AddDownstream(&lm, port++);

  RunResult result;
  size_t next0 = 0;
  size_t next1 = 0;
  const size_t n = stream.size();
  while ((use_plan0 && next0 < n) || (use_plan1 && next1 < n)) {
    ++result.rounds;
    const auto run_plan = [&stream, n](UdfSelect& plan, size_t* next) {
      const int64_t start = plan.work_done();
      int64_t elements = 0;
      while (*next < n && (plan.work_done() - start) +
                                  kPipelineCost * elements <
                              kRoundBudget) {
        plan.Consume(0, stream[(*next)++]);
        ++elements;
      }
    };
    if (use_plan0) run_plan(plan0, &next0);
    if (use_plan1) run_plan(plan1, &next1);
  }
  result.work0 = plan0.work_done();
  result.work1 = plan1.work_done();
  result.skipped0 = plan0.elements_skipped();
  result.skipped1 = plan1.elements_skipped();
  result.merged_inserts = merged.inserts();
  return result;
}

int Main() {
  const ElementSequence stream = AlternatingBatches(60000);
  std::printf("# Figure 10: dynamic plan switching with fast-forward\n");
  std::printf("# %zu elements, alternating low/high-X batches; round "
              "budget %" PRId64 " work units per plan\n",
              stream.size(), kRoundBudget);
  std::printf("%-18s %-10s %-12s %-12s %-10s %-10s %-10s\n", "config",
              "rounds", "udf0_work", "udf1_work", "skip0", "skip1",
              "out_ins");

  const RunResult udf0 = Run(stream, true, false, false);
  const RunResult udf1 = Run(stream, false, true, false);
  const RunResult lmerge = Run(stream, true, true, false);
  const RunResult lm_feedback = Run(stream, true, true, true);

  auto row = [](const char* name, const RunResult& r) {
    std::printf("%-18s %-10" PRId64 " %-12" PRId64 " %-12" PRId64
                " %-10" PRId64 " %-10" PRId64 " %-10" PRId64 "\n",
                name, r.rounds, r.work0, r.work1, r.skipped0, r.skipped1,
                r.merged_inserts);
  };
  row("UDF0_alone", udf0);
  row("UDF1_alone", udf1);
  row("LMR3+_no_feedback", lmerge);
  row("LM+Feedback", lm_feedback);

  std::printf("# speedup of LM+Feedback over LMR3+ without feedback: "
              "%.1fx (paper: ~5x)\n",
              static_cast<double>(lmerge.rounds) /
                  static_cast<double>(lm_feedback.rounds));
  return 0;
}

}  // namespace
}  // namespace lmerge::bench

int main() { return lmerge::bench::Main(); }
