// Figure 4 — Output size (number of adjust elements) as input disorder
// increases, comparing the stream's own adjust traffic ("without LMerge")
// to LMerge's output ("with LMerge").
//
// Setup per Sec. VI-C.2: disordered streams are fed into a sub-query that
// generates many adjust() elements (aggressive aggregate + lifetime
// modification); two divergent copies of the fragment output feed LMR3+.
// Paper shape: adjusts grow steeply with disorder, but the lazy output
// policy keeps LMerge's output size at or below the input's (intermediate
// adjusts that never make the final TDB are suppressed).  The `eager`
// variants quantify the policy ablation from DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"
#include "workload/subquery.h"

namespace lmerge::bench {
namespace {

// Two divergent presentations of ONE logical source, each pushed through
// its own copy of the adjust-producing fragment.
std::vector<ElementSequence> FragmentPair(double disorder) {
  workload::GeneratorConfig config = PaperConfig(15000, 9);
  config.max_disorder_elements = 120;  // stragglers cross window boundaries
  config.payload_string_bytes = 16;  // adjust counting, not memory, matters
  config.key_range = 10;  // several events per (window, group) slot
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);
  std::vector<ElementSequence> out;
  for (uint64_t v = 0; v < 2; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = disorder;
    options.max_disorder_elements = 120;
    options.seed = 100 + v;
    const ElementSequence raw =
        GeneratePhysicalVariant(history, options);
    out.push_back(workload::MakeAdjustHeavyStream(
        raw, /*window_size=*/600, /*max_lifetime=*/200000,
        /*group_column=*/0));
  }
  return out;
}

void OutputSize(benchmark::State& state, AdjustPolicy policy) {
  const double disorder = static_cast<double>(state.range(0)) / 100.0;
  const std::vector<ElementSequence> pair = FragmentPair(disorder);
  const ElementSequence& in1 = pair[0];
  const ElementSequence& in2 = pair[1];
  int64_t adjusts_in = 0;
  for (const auto& e : in1) adjusts_in += e.is_adjust() ? 1 : 0;

  int64_t adjusts_out = 0;
  int64_t elements_out = 0;
  for (auto _ : state) {
    CountingSink sink;
    MergePolicy merge_policy;
    merge_policy.adjust_policy = policy;
    auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &sink,
                                     merge_policy);
    RoundRobinDeliver(algo.get(), {in1, in2});
    adjusts_out = sink.adjusts();
    elements_out = sink.total();
  }
  state.counters["disorder_pct"] = benchmark::Counter(state.range(0));
  state.counters["adjusts_no_lmerge"] =
      benchmark::Counter(static_cast<double>(adjusts_in));
  state.counters["adjusts_lmerge_out"] =
      benchmark::Counter(static_cast<double>(adjusts_out));
  state.counters["elements_out"] =
      benchmark::Counter(static_cast<double>(elements_out));
}

void BM_Fig4_LazyPolicy(benchmark::State& state) {
  OutputSize(state, AdjustPolicy::kLazy);
}
void BM_Fig4_EagerPolicy(benchmark::State& state) {
  OutputSize(state, AdjustPolicy::kEager);
}

BENCHMARK(BM_Fig4_LazyPolicy)
    ->Arg(0)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig4_EagerPolicy)
    ->Arg(0)
    ->Arg(20)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
