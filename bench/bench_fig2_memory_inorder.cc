// Figure 2 — Memory vs. number of input streams, in-order insert-only
// inputs, all LMerge variants.
//
// Paper shape: LMR0/LMR1/LMR2 negligible and overlapping; LMR3+ modestly
// higher but nearly flat in the number of inputs (payloads shared in in2t);
// LMR3- much higher and growing linearly (payloads duplicated per input).
//
// Reported counter: peak operator state in bytes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

const workload::LogicalHistory& History() {
  static const workload::LogicalHistory* history = [] {
    auto* h = new workload::LogicalHistory(
        workload::GenerateHistory(PaperConfig(20000)));
    return h;
  }();
  return *history;
}

void MemoryInOrder(benchmark::State& state, MergeVariant variant) {
  const int num_inputs = static_cast<int>(state.range(0));
  // In-order presentation replicated across inputs.
  const ElementSequence stream = workload::RenderInOrder(History());
  std::vector<ElementSequence> inputs(static_cast<size_t>(num_inputs),
                                      stream);
  int64_t peak = 0;
  for (auto _ : state) {
    NullSink sink;
    auto algo = CreateMergeAlgorithm(variant, num_inputs, &sink);
    peak = RoundRobinPeakMemory(algo.get(), inputs);
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_bytes"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["inputs"] = benchmark::Counter(num_inputs);
}

#define FIG2_BENCH(variant_enum, name)                                   \
  void BM_Fig2_##name(benchmark::State& state) {                        \
    MemoryInOrder(state, MergeVariant::variant_enum);                   \
  }                                                                      \
  BENCHMARK(BM_Fig2_##name)                                              \
      ->DenseRange(2, 10, 2)                                             \
      ->Iterations(1)                                                    \
      ->Unit(benchmark::kMillisecond)

FIG2_BENCH(kLMR0, LMR0);
FIG2_BENCH(kLMR1, LMR1);
FIG2_BENCH(kLMR2, LMR2);
FIG2_BENCH(kLMR3Plus, LMR3Plus);
FIG2_BENCH(kLMR3Minus, LMR3Minus);
FIG2_BENCH(kLMR4, LMR4);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
