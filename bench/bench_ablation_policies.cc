// Ablation bench (DESIGN.md Sec. 5): the output-policy knobs of Sec. V-A /
// III-D, measured on one revision-heavy workload:
//
//   * adjust policy     — lazy (Theorem 1) vs. eager reflection;
//   * insert policy     — first-insert-wins vs. wait-half-frozen vs.
//                         quorum;
//   * stable lag        — track the max input stable point vs. trail it;
//   * R4 reconciliation — exact-match vs. count-only.
//
// Counters: output element counts (chattiness) and wall time (throughput).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "stream/sink.h"

namespace lmerge::bench {
namespace {

const std::vector<ElementSequence>& Inputs() {
  static const std::vector<ElementSequence>* inputs = [] {
    workload::GeneratorConfig config = PaperConfig(10000, 101);
    config.stable_freq = 0.01;
    config.event_duration = 30000;
    config.duration_jitter = 10000;
    config.payload_string_bytes = 64;
    const workload::LogicalHistory history =
        workload::GenerateHistory(config);
    return new std::vector<ElementSequence>(
        MakeReplicas(history, 3, /*disorder=*/0.4, /*split=*/0.5, 4242));
  }();
  return *inputs;
}

void RunPolicy(benchmark::State& state, MergeVariant variant,
               MergePolicy policy) {
  const std::vector<ElementSequence>& inputs = Inputs();
  int64_t inserts = 0;
  int64_t adjusts = 0;
  int64_t delivered = 0;
  for (auto _ : state) {
    CountingSink sink;
    auto algo = CreateMergeAlgorithm(variant, 3, &sink, policy);
    delivered += RoundRobinDeliver(algo.get(), inputs);
    inserts = sink.inserts();
    adjusts = sink.adjusts();
  }
  state.SetItemsProcessed(delivered);
  state.counters["out_inserts"] =
      benchmark::Counter(static_cast<double>(inserts));
  state.counters["out_adjusts"] =
      benchmark::Counter(static_cast<double>(adjusts));
}

void BM_Ablation_R3Lazy(benchmark::State& state) {
  RunPolicy(state, MergeVariant::kLMR3Plus, MergePolicy::Default());
}
void BM_Ablation_R3Eager(benchmark::State& state) {
  RunPolicy(state, MergeVariant::kLMR3Plus, MergePolicy::Eager());
}
void BM_Ablation_R3WaitHalfFrozen(benchmark::State& state) {
  RunPolicy(state, MergeVariant::kLMR3Plus, MergePolicy::Conservative());
}
void BM_Ablation_R3Quorum2of3(benchmark::State& state) {
  MergePolicy policy;
  policy.insert_policy = InsertPolicy::kFractionThreshold;
  policy.insert_fraction = 0.6;
  RunPolicy(state, MergeVariant::kLMR3Plus, policy);
}
void BM_Ablation_R3StableLag(benchmark::State& state) {
  MergePolicy policy;
  policy.stable_lag = state.range(0);
  RunPolicy(state, MergeVariant::kLMR3Plus, policy);
  state.counters["stable_lag"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
void BM_Ablation_R4Exact(benchmark::State& state) {
  RunPolicy(state, MergeVariant::kLMR4, MergePolicy::Default());
}
void BM_Ablation_R4CountOnly(benchmark::State& state) {
  MergePolicy policy;
  policy.r4_exact_match = false;
  RunPolicy(state, MergeVariant::kLMR4, policy);
}

BENCHMARK(BM_Ablation_R3Lazy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R3Eager)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R3WaitHalfFrozen)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R3Quorum2of3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R3StableLag)
    ->Arg(0)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R4Exact)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_R4CountOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lmerge::bench

BENCHMARK_MAIN();
