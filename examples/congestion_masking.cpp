// Masking network congestion (Sec. II-2, VI-E.2): replicas of one stream
// arrive over independently congested paths; LMerge keeps the consumer's
// throughput steady as long as one path is healthy.
//
//   build/examples/congestion_masking

#include <cstdio>

#include "core/factory.h"
#include "engine/delay.h"
#include "engine/simulator.h"
#include "operators/operator.h"
#include "workload/generator.h"

using namespace lmerge;

namespace {

class MergeEntry : public Operator {
 public:
  MergeEntry(MergeAlgorithm* algo, int inputs)
      : Operator("merge", inputs), algo_(algo) {}

 protected:
  void OnElement(int port, const StreamElement& element) override {
    LM_CHECK(algo_->OnElement(port, element).ok());
  }

 private:
  MergeAlgorithm* algo_;
};

}  // namespace

int main() {
  constexpr double kRate = 2000.0;
  workload::GeneratorConfig config;
  config.num_inserts = 20000;
  config.stable_freq = 0.01;
  config.event_duration = 40000;
  config.max_gap = 20;
  config.payload_string_bytes = 8;
  config.seed = 6;
  const workload::LogicalHistory history =
      workload::GenerateHistory(config);

  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 2; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = 0.2;
    options.split_probability = 0.0;  // insert-only replicas
    options.seed = 40 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }
  // The consumer sees one insert per logical event; with ~1% of the channel
  // spent on stable() elements the steady-state output rate is just below
  // the channel rate.
  const double nominal =
      kRate * static_cast<double>(config.num_inserts) /
      static_cast<double>(replicas[0].size());

  Simulator sim;
  ThroughputRecorder merged_rate(&sim, 0.5);
  auto algo = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &merged_rate);
  MergeEntry entry(algo.get(), 2);

  // Path 0 congests at [2, 4) s; path 1 at [6, 8) s.
  CongestionConfig path0;
  path0.rate = kRate;
  path0.windows = {{2.0, 4.0, 0.0015, 0.0004}};
  path0.seed = 1;
  CongestionConfig path1;
  path1.rate = kRate;
  path1.windows = {{6.0, 8.0, 0.0015, 0.0004}};
  path1.seed = 2;
  sim.AddInput(&entry, 0, ScheduleCongestion(replicas[0], path0));
  sim.AddInput(&entry, 1, ScheduleCongestion(replicas[1], path1));
  sim.Run();

  std::printf("consumer-side throughput (LMerge over two congested "
              "paths):\n");
  std::printf("%-8s %-12s   path0 congested [2,4)s, path1 [6,8)s\n",
              "time_s", "events/s");
  const auto series = merged_rate.RatePerSecond();
  double min_rate = 1e18;
  for (size_t b = 0; b + 1 < series.size(); ++b) {
    std::printf("%-8.1f %-12.0f %s\n", static_cast<double>(b) * 0.5,
                series[b],
                series[b] < nominal * 0.8 ? "<-- dip" : "");
    min_rate = std::min(min_rate, series[b]);
  }
  std::printf("\nminimum consumer throughput: %.0f events/s "
              "(nominal %.0f) — congestion fully masked: %s\n",
              min_rate, nominal, min_rate > nominal * 0.8 ? "YES" : "NO");
  return 0;
}
