// High availability (Sec. II-1): three replicas of a continuous query feed
// one LMerge; two replicas fail mid-run, a fresh one spins up and joins, and
// the consumer never notices.
//
//   build/examples/high_availability

#include <cstdio>

#include "core/lmerge_operator.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "workload/generator.h"

using namespace lmerge;

int main() {
  // One logical query result, three divergent physical replicas.
  workload::GeneratorConfig config;
  config.num_inserts = 2000;
  config.stable_freq = 0.05;
  config.event_duration = 500;
  config.max_gap = 10;
  config.payload_string_bytes = 8;
  config.seed = 11;
  workload::LogicalHistory history = workload::GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  std::vector<ElementSequence> replicas;
  for (uint64_t v = 0; v < 3; ++v) {
    workload::VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.2;
    options.seed = 500 + v;
    replicas.push_back(GeneratePhysicalVariant(history, options));
  }

  LMergeOperator lmerge("ha-merge", 3, MergeVariant::kLMR3Plus);
  CountingSink counter;
  CollectingSink collected;
  lmerge.AddSink(&counter);
  lmerge.AddSink(&collected);

  // Round-robin delivery; replica 0 dies at 30%, replica 1 at 70%.
  const size_t kill0 = replicas[0].size() * 3 / 10;
  const size_t kill1 = replicas[1].size() * 7 / 10;
  size_t next[3] = {0, 0, 0};
  bool announced0 = false;
  bool announced1 = false;
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < 3; ++s) {
      if (s == 0 && next[0] >= kill0) {
        if (!announced0) {
          lmerge.DetachInput(0);
          std::printf("[t~%2.0f%%] replica 0 FAILED and detached\n", 30.0);
          announced0 = true;
        }
        continue;
      }
      if (s == 1 && next[1] >= kill1) {
        if (!announced1) {
          lmerge.DetachInput(1);
          std::printf("[t~%2.0f%%] replica 1 FAILED and detached\n", 70.0);
          announced1 = true;
        }
        continue;
      }
      if (next[s] < replicas[static_cast<size_t>(s)].size()) {
        lmerge.Consume(s, replicas[static_cast<size_t>(s)]
                              [next[static_cast<size_t>(s)]++]);
        any = true;
      }
    }
  }

  const Tdb merged = Tdb::Reconstitute(collected.elements());
  const Tdb reference =
      Tdb::Reconstitute(workload::RenderInOrder(history));
  std::printf("\nsurvived on replica 2 alone\n");
  std::printf("merged output: %lld events, %lld inserts / %lld adjusts / "
              "%lld stables\n",
              static_cast<long long>(merged.EventCount()),
              static_cast<long long>(counter.inserts()),
              static_cast<long long>(counter.adjusts()),
              static_cast<long long>(counter.stables()));
  std::printf("output complete and correct despite 2 failures: %s\n",
              merged.Equals(reference) ? "YES" : "NO");

  // A replacement replica spins up and joins with a join time of "now";
  // from the moment the output stable point passes it, the system again
  // tolerates the failure of every older input.
  const Timestamp join_time = lmerge.algorithm().max_stable();
  const int port = lmerge.AttachInput(join_time);
  std::printf("\nnew replica attached on port %d (join time %s); joined: %s\n",
              port, TimestampToString(join_time).c_str(),
              lmerge.InputJoined(port) ? "yes" : "not yet");
  return merged.Equals(reference) ? 0 : 1;
}
