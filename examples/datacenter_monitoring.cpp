// The paper's running data-center example (Sec. I): per-machine process
// counts computed by replicated query plans over disordered measurement
// streams — with the LMerge algorithm chosen automatically from the
// compile-time stream properties of each plan (Sec. IV-G).
//
//   build/examples/datacenter_monitoring

#include <cstdio>

#include "core/lmerge_operator.h"
#include "engine/graph.h"
#include "operators/aggregate.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "workload/generator.h"

using namespace lmerge;

int main() {
  // The measurement source: process events from machines 0..4, each event's
  // lifetime = the process lifetime.  Transmission disorders each replica's
  // copy differently.
  workload::GeneratorConfig config;
  config.num_inserts = 3000;
  config.stable_freq = 0.03;
  config.event_duration = 900;
  config.duration_jitter = 400;
  config.max_gap = 8;
  config.key_range = 4;  // machine id
  config.payload_string_bytes = 6;
  config.seed = 3;
  workload::LogicalHistory history = workload::GenerateHistory(config);
  Timestamp max_ve = 0;
  for (const Event& e : history.events) max_ve = std::max(max_ve, e.ve);
  history.stable_times.push_back(max_ve + 1);

  // Two replicated plans: grouped process count per machine per window.
  QueryGraph graph;
  AggregateConfig agg_config;
  agg_config.window_size = 2000;
  agg_config.group_column = 0;  // machine id
  agg_config.mode = AggregateMode::kAggressive;
  auto* plan1 = graph.Add<GroupedAggregate>("count-per-machine-1",
                                            agg_config);
  auto* plan2 = graph.Add<GroupedAggregate>("count-per-machine-2",
                                            agg_config);

  // What the sources guarantee: insert-only with unique (Vs, payload), but
  // NOT ordered (network disorder).
  StreamProperties source;
  source.insert_only = true;
  source.vs_payload_key = true;
  graph.DeclareEntry(plan1, 0, source);
  graph.DeclareEntry(plan2, 0, source);

  // Derive each plan's output properties and pick the merge algorithm.
  std::map<const Operator*, StreamProperties> derived;
  LM_CHECK(graph.DeriveAll(&derived).ok());
  std::printf("source properties:       %s\n", source.ToString().c_str());
  std::printf("aggregate output:        %s\n",
              derived[plan1].ToString().c_str());
  const AlgorithmCase chosen =
      ChooseAlgorithm({derived[plan1], derived[plan2]});
  std::printf("selected LMerge variant: %s  (Sec. IV-G example 6)\n\n",
              AlgorithmCaseName(chosen));

  auto* lmerge = graph.Add<LMergeOperator>(
      "lm", std::vector<StreamProperties>{derived[plan1], derived[plan2]});
  graph.Connect(plan1, lmerge, 0);
  graph.Connect(plan2, lmerge, 1);
  CollectingSink merged;
  lmerge->AddSink(&merged);

  // Deliver two divergent physical copies of the measurement stream.
  workload::VariantOptions v1;
  v1.disorder_fraction = 0.25;
  v1.seed = 1;
  workload::VariantOptions v2;
  v2.disorder_fraction = 0.4;
  v2.seed = 2;
  const ElementSequence in1 = GeneratePhysicalVariant(history, v1);
  const ElementSequence in2 = GeneratePhysicalVariant(history, v2);
  for (size_t i = 0; i < std::max(in1.size(), in2.size()); ++i) {
    if (i < in1.size()) plan1->Consume(0, in1[i]);
    if (i < in2.size()) plan2->Consume(0, in2[i]);
  }

  // Reference: the same aggregate over the clean in-order stream.
  GroupedAggregate reference_plan("reference", agg_config);
  CollectingSink reference;
  reference_plan.AddSink(&reference);
  for (const StreamElement& e : workload::RenderInOrder(history)) {
    reference_plan.Consume(0, e);
  }

  const Tdb got = Tdb::Reconstitute(merged.elements());
  const Tdb want = Tdb::Reconstitute(reference.elements());
  std::printf("merged per-machine counts: %lld result events\n",
              static_cast<long long>(got.EventCount()));
  std::printf("equal to single clean-plan result: %s\n\n",
              got.Equals(want) ? "YES" : "NO");

  // A taste of the result: first few (machine, count) windows.
  int shown = 0;
  got.ForEach([&shown](const Event& event, int64_t count) {
    (void)count;
    if (shown++ >= 5) return;
    std::printf("  window [%s, %s): machine %lld ran %lld processes\n",
                TimestampToString(event.vs).c_str(),
                TimestampToString(event.ve).c_str(),
                static_cast<long long>(event.payload.field(0).AsInt64()),
                static_cast<long long>(event.payload.field(1).AsInt64()));
  });
  return got.Equals(want) ? 0 : 1;
}
