// Quickstart: merge two physically divergent presentations of the same
// logical stream — the paper's Table I example, end to end.
//
//   build/examples/quickstart

#include <cstdio>

#include "core/factory.h"
#include "stream/sink.h"
#include "temporal/tdb.h"

using namespace lmerge;

int main() {
  const Row a = Row::OfString("A");
  const Row b = Row::OfString("B");

  // Phy1: B arrives first with an open lifetime, later trimmed; a stable(11)
  // then freezes everything ending before t=11.
  const ElementSequence phy1 = {
      StreamElement::Insert(b, 8, kInfinity),
      StreamElement::Insert(a, 6, 12),
      StreamElement::Adjust(b, 8, kInfinity, 10),
      StreamElement::Stable(11),
      StreamElement::Stable(1000),
  };
  // Phy2: the same logical events, presented with provisional end times that
  // are revised later.
  const ElementSequence phy2 = {
      StreamElement::Insert(a, 6, 7),
      StreamElement::Insert(b, 8, 15),
      StreamElement::Adjust(a, 6, 7, 12),
      StreamElement::Adjust(b, 8, 15, 10),
      StreamElement::Stable(1000),
  };

  std::printf("Input stream Phy1:\n%s\n",
              ElementSequenceToString(phy1).c_str());
  std::printf("Input stream Phy2:\n%s\n",
              ElementSequenceToString(phy2).c_str());

  // Both reconstitute to the same temporal database.
  std::printf("tdb(Phy1) == tdb(Phy2): %s\n\n",
              Tdb::Reconstitute(phy1).Equals(Tdb::Reconstitute(phy2))
                  ? "yes"
                  : "no");

  // Merge them: elements may interleave arbitrarily across streams.  Here
  // Phy2 races ahead, then Phy1 delivers everything including its stable.
  CollectingSink output;
  auto lmerge = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &output);
  LM_CHECK(lmerge->OnElement(1, phy2[0]).ok());
  LM_CHECK(lmerge->OnElement(1, phy2[1]).ok());
  for (const StreamElement& e : phy1) {
    LM_CHECK(lmerge->OnElement(0, e).ok());
  }
  for (size_t i = 2; i < phy2.size(); ++i) {
    LM_CHECK(lmerge->OnElement(1, phy2[i]).ok());
  }

  std::printf("LMerge output stream:\n%s\n",
              ElementSequenceToString(output.elements()).c_str());
  const Tdb merged = Tdb::Reconstitute(output.elements());
  std::printf("Merged logical content:\n%s\n\n", merged.ToString().c_str());
  std::printf("merged TDB == tdb(Phy1): %s\n",
              merged.Equals(Tdb::Reconstitute(phy1)) ? "yes" : "no");
  std::printf(
      "output elements: %zu inserts+adjusts for %d logical events "
      "(no loss, no duplication)\n",
      output.elements().size() - 2 /* stables */, 2);
  return 0;
}
