// Consolidated ticker tape: two exchange feeds carry the same quotes with
// different physical presentations (open-ended quotes trimmed later,
// transmission disorder); LMerge produces one clean consolidated stream —
// the revision-tuple scenario of Sec. I.
//
//   build/examples/stock_ticker

#include <cstdio>

#include "core/factory.h"
#include "stream/sink.h"
#include "temporal/tdb.h"
#include "workload/ticker.h"

using namespace lmerge;
using namespace lmerge::workload;

int main() {
  TickerConfig config;
  config.num_symbols = 3;
  config.quotes_per_symbol = 120;
  config.max_gap = 500;
  config.stable_freq = 0.03;
  config.seed = 2012;
  LogicalHistory history = GenerateTickerHistory(config);

  // Market close: end open quotes so the tape converges exactly.
  Timestamp close = 0;
  for (const Event& e : history.events) {
    if (e.ve != kInfinity) close = std::max(close, e.ve);
  }
  close += 1000;
  for (Event& e : history.events) {
    if (e.ve == kInfinity) e.ve = close;
  }
  history.stable_times.push_back(close + 1);

  // Two exchange feeds: same quotes, different physical presentation.
  std::vector<ElementSequence> feeds;
  for (uint64_t v = 0; v < 2; ++v) {
    VariantOptions options;
    options.disorder_fraction = 0.25;
    options.split_probability = 0.8;   // quotes open, trimmed on successor
    options.provisional_open = true;
    options.seed = 100 + v;
    feeds.push_back(GeneratePhysicalVariant(history, options));
  }
  std::printf("feed A: %zu elements; feed B: %zu elements; logical quotes: "
              "%zu\n",
              feeds[0].size(), feeds[1].size(), history.events.size());

  CollectingSink tape;
  CountingSink counter(&tape);
  auto lmerge = CreateMergeAlgorithm(MergeVariant::kLMR3Plus, 2, &counter);
  // Feed A runs slightly ahead; feed B trails by 8 elements.
  const size_t lag = 8;
  for (size_t i = 0; i < feeds[0].size() + lag; ++i) {
    if (i < feeds[0].size()) {
      LM_CHECK(lmerge->OnElement(0, feeds[0][i]).ok());
    }
    if (i >= lag && i - lag < feeds[1].size()) {
      LM_CHECK(lmerge->OnElement(1, feeds[1][i - lag]).ok());
    }
  }

  const Tdb consolidated = Tdb::Reconstitute(tape.elements());
  const Tdb reference = Tdb::Reconstitute(RenderInOrder(history));
  std::printf("consolidated tape: %lld quote intervals (%lld inserts, %lld "
              "adjusts on the wire)\n",
              static_cast<long long>(consolidated.EventCount()),
              static_cast<long long>(counter.inserts()),
              static_cast<long long>(counter.adjusts()));
  std::printf("tape equals the reference quote history: %s\n\n",
              consolidated.Equals(reference) ? "YES" : "NO");

  // Show SYM0's last few quote intervals.
  std::printf("last quotes for %s:\n", TickerSymbol(0).c_str());
  std::vector<Event> quotes;
  consolidated.ForEach([&quotes](const Event& e, int64_t count) {
    (void)count;
    if (e.payload.field(0).AsString() == "SYM0") quotes.push_back(e);
  });
  for (size_t i = quotes.size() >= 5 ? quotes.size() - 5 : 0;
       i < quotes.size(); ++i) {
    std::printf("  [%8s, %8s)  $%.2f\n",
                TimestampToString(quotes[i].vs).c_str(),
                TimestampToString(quotes[i].ve).c_str(),
                static_cast<double>(quotes[i].payload.field(1).AsInt64()) /
                    100.0);
  }
  return consolidated.Equals(reference) ? 0 : 1;
}
