// Dynamic plan selection with feedback fast-forward (Sec. II-3, V-D):
// two equivalent plans whose costs depend on the data distribution run side
// by side under an LMerge; feedback signals let the currently suboptimal
// plan skip work that can no longer affect the output.
//
//   build/examples/plan_switching

#include <cstdio>

#include "common/random.h"
#include "core/lmerge_operator.h"
#include "operators/select.h"
#include "stream/sink.h"

using namespace lmerge;

namespace {

ElementSequence AlternatingBatches(int64_t total) {
  Rng rng(4);
  ElementSequence out;
  Timestamp now = 0;
  bool low = true;
  for (int64_t produced = 0; produced < total;) {
    const int64_t batch = rng.UniformInt(1500, 3000);
    for (int64_t i = 0; i < batch && produced < total; ++i, ++produced) {
      ++now;
      const int64_t x =
          low ? rng.UniformInt(0, 199) : rng.UniformInt(200, 400);
      out.push_back(StreamElement::Insert(Row::OfInt(x), now, now + 100));
      if (produced % 100 == 99) out.push_back(StreamElement::Stable(now));
    }
    low = !low;
  }
  return out;
}

struct Plans {
  UdfSelect plan0{"udf0", [](const Row&) { return true; },
                  [](const Row& row) {
                    return row.field(0).AsInt64() < 200 ? int64_t{200}
                                                        : int64_t{2};
                  }};
  UdfSelect plan1{"udf1", [](const Row&) { return true; },
                  [](const Row& row) {
                    return row.field(0).AsInt64() < 200 ? int64_t{2}
                                                        : int64_t{200};
                  }};
};

// Runs both plans with a shared per-round work budget (two machines running
// in parallel); returns the number of rounds until both finish.
int64_t Run(const ElementSequence& stream, bool feedback, Plans* plans) {
  LMergeOperator lmerge("lm", 2, MergeVariant::kLMR3Plus,
                        MergePolicy::Default(), feedback);
  plans->plan0.AddDownstream(&lmerge, 0);
  plans->plan1.AddDownstream(&lmerge, 1);
  NullSink sink;
  lmerge.AddSink(&sink);
  constexpr int64_t kBudget = 20000;
  constexpr int64_t kPipelineCost = 15;
  size_t next0 = 0;
  size_t next1 = 0;
  int64_t rounds = 0;
  while (next0 < stream.size() || next1 < stream.size()) {
    ++rounds;
    auto step = [&stream](UdfSelect& plan, size_t* next) {
      const int64_t start = plan.work_done();
      int64_t elements = 0;
      while (*next < stream.size() &&
             (plan.work_done() - start) + kPipelineCost * elements <
                 kBudget) {
        plan.Consume(0, stream[(*next)++]);
        ++elements;
      }
    };
    step(plans->plan0, &next0);
    step(plans->plan1, &next1);
  }
  return rounds;
}

}  // namespace

int main() {
  const ElementSequence stream = AlternatingBatches(20000);
  std::printf("workload: %zu elements in alternating low-X / high-X "
              "batches\n",
              stream.size());
  std::printf("plan UDF0 is expensive for X<200; plan UDF1 for X>=200\n\n");

  Plans without;
  const int64_t rounds_plain = Run(stream, /*feedback=*/false, &without);
  std::printf("LMerge without feedback: %lld rounds; plan work = %lld + "
              "%lld units\n",
              static_cast<long long>(rounds_plain),
              static_cast<long long>(without.plan0.work_done()),
              static_cast<long long>(without.plan1.work_done()));

  Plans with;
  const int64_t rounds_feedback = Run(stream, /*feedback=*/true, &with);
  std::printf("LMerge with feedback:    %lld rounds; plan work = %lld + "
              "%lld units; skipped %lld + %lld elements\n",
              static_cast<long long>(rounds_feedback),
              static_cast<long long>(with.plan0.work_done()),
              static_cast<long long>(with.plan1.work_done()),
              static_cast<long long>(with.plan0.elements_skipped()),
              static_cast<long long>(with.plan1.elements_skipped()));

  std::printf("\nfast-forward speedup: %.1fx\n",
              static_cast<double>(rounds_plain) /
                  static_cast<double>(rounds_feedback));
  return 0;
}
