
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/row.cc" "src/CMakeFiles/lmerge.dir/common/row.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/common/row.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/lmerge.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/common/schema.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/lmerge.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/common/serde.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/lmerge.dir/common/value.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/common/value.cc.o.d"
  "/root/repo/src/core/factory.cc" "src/CMakeFiles/lmerge.dir/core/factory.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/factory.cc.o.d"
  "/root/repo/src/core/lmerge_operator.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_operator.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_operator.cc.o.d"
  "/root/repo/src/core/lmerge_r0.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r0.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r0.cc.o.d"
  "/root/repo/src/core/lmerge_r1.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r1.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r1.cc.o.d"
  "/root/repo/src/core/lmerge_r2.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r2.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r2.cc.o.d"
  "/root/repo/src/core/lmerge_r3.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r3.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r3.cc.o.d"
  "/root/repo/src/core/lmerge_r3_minus.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r3_minus.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r3_minus.cc.o.d"
  "/root/repo/src/core/lmerge_r4.cc" "src/CMakeFiles/lmerge.dir/core/lmerge_r4.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/core/lmerge_r4.cc.o.d"
  "/root/repo/src/engine/concurrent.cc" "src/CMakeFiles/lmerge.dir/engine/concurrent.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/engine/concurrent.cc.o.d"
  "/root/repo/src/engine/delay.cc" "src/CMakeFiles/lmerge.dir/engine/delay.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/engine/delay.cc.o.d"
  "/root/repo/src/engine/graph.cc" "src/CMakeFiles/lmerge.dir/engine/graph.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/engine/graph.cc.o.d"
  "/root/repo/src/engine/simulator.cc" "src/CMakeFiles/lmerge.dir/engine/simulator.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/engine/simulator.cc.o.d"
  "/root/repo/src/operators/aggregate.cc" "src/CMakeFiles/lmerge.dir/operators/aggregate.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/operators/aggregate.cc.o.d"
  "/root/repo/src/operators/cleanse.cc" "src/CMakeFiles/lmerge.dir/operators/cleanse.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/operators/cleanse.cc.o.d"
  "/root/repo/src/operators/join.cc" "src/CMakeFiles/lmerge.dir/operators/join.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/operators/join.cc.o.d"
  "/root/repo/src/operators/multiway_join.cc" "src/CMakeFiles/lmerge.dir/operators/multiway_join.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/operators/multiway_join.cc.o.d"
  "/root/repo/src/properties/properties.cc" "src/CMakeFiles/lmerge.dir/properties/properties.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/properties/properties.cc.o.d"
  "/root/repo/src/properties/runtime_stats.cc" "src/CMakeFiles/lmerge.dir/properties/runtime_stats.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/properties/runtime_stats.cc.o.d"
  "/root/repo/src/stream/element.cc" "src/CMakeFiles/lmerge.dir/stream/element.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/stream/element.cc.o.d"
  "/root/repo/src/stream/element_serde.cc" "src/CMakeFiles/lmerge.dir/stream/element_serde.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/stream/element_serde.cc.o.d"
  "/root/repo/src/stream/openclose.cc" "src/CMakeFiles/lmerge.dir/stream/openclose.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/stream/openclose.cc.o.d"
  "/root/repo/src/stream/validate.cc" "src/CMakeFiles/lmerge.dir/stream/validate.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/stream/validate.cc.o.d"
  "/root/repo/src/temporal/compat.cc" "src/CMakeFiles/lmerge.dir/temporal/compat.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/temporal/compat.cc.o.d"
  "/root/repo/src/temporal/tdb.cc" "src/CMakeFiles/lmerge.dir/temporal/tdb.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/temporal/tdb.cc.o.d"
  "/root/repo/src/tools/cli.cc" "src/CMakeFiles/lmerge.dir/tools/cli.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/tools/cli.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/lmerge.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/subquery.cc" "src/CMakeFiles/lmerge.dir/workload/subquery.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/workload/subquery.cc.o.d"
  "/root/repo/src/workload/ticker.cc" "src/CMakeFiles/lmerge.dir/workload/ticker.cc.o" "gcc" "src/CMakeFiles/lmerge.dir/workload/ticker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
