file(REMOVE_RECURSE
  "liblmerge.a"
)
