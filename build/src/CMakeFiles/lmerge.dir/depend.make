# Empty dependencies file for lmerge.
# This may be replaced when dependencies are built.
