file(REMOVE_RECURSE
  "CMakeFiles/ha_test.dir/integration/ha_test.cc.o"
  "CMakeFiles/ha_test.dir/integration/ha_test.cc.o.d"
  "ha_test"
  "ha_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
