# Empty dependencies file for ha_test.
# This may be replaced when dependencies are built.
