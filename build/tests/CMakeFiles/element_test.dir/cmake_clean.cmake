file(REMOVE_RECURSE
  "CMakeFiles/element_test.dir/stream/element_test.cc.o"
  "CMakeFiles/element_test.dir/stream/element_test.cc.o.d"
  "element_test"
  "element_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/element_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
