# Empty dependencies file for lmerge_r4_test.
# This may be replaced when dependencies are built.
