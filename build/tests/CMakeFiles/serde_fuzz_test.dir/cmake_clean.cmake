file(REMOVE_RECURSE
  "CMakeFiles/serde_fuzz_test.dir/common/serde_fuzz_test.cc.o"
  "CMakeFiles/serde_fuzz_test.dir/common/serde_fuzz_test.cc.o.d"
  "serde_fuzz_test"
  "serde_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serde_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
