# Empty dependencies file for openclose_test.
# This may be replaced when dependencies are built.
