file(REMOVE_RECURSE
  "CMakeFiles/openclose_test.dir/stream/openclose_test.cc.o"
  "CMakeFiles/openclose_test.dir/stream/openclose_test.cc.o.d"
  "openclose_test"
  "openclose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openclose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
