file(REMOVE_RECURSE
  "CMakeFiles/alter_lifetime_test.dir/operators/alter_lifetime_test.cc.o"
  "CMakeFiles/alter_lifetime_test.dir/operators/alter_lifetime_test.cc.o.d"
  "alter_lifetime_test"
  "alter_lifetime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alter_lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
