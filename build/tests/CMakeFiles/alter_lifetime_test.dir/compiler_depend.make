# Empty compiler generated dependencies file for alter_lifetime_test.
# This may be replaced when dependencies are built.
