# Empty compiler generated dependencies file for lmerge_r3_test.
# This may be replaced when dependencies are built.
