file(REMOVE_RECURSE
  "CMakeFiles/lmerge_r3_test.dir/core/lmerge_r3_test.cc.o"
  "CMakeFiles/lmerge_r3_test.dir/core/lmerge_r3_test.cc.o.d"
  "lmerge_r3_test"
  "lmerge_r3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_r3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
