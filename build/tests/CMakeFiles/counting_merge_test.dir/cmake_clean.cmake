file(REMOVE_RECURSE
  "CMakeFiles/counting_merge_test.dir/core/counting_merge_test.cc.o"
  "CMakeFiles/counting_merge_test.dir/core/counting_merge_test.cc.o.d"
  "counting_merge_test"
  "counting_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
