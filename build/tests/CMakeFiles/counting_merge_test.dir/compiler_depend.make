# Empty compiler generated dependencies file for counting_merge_test.
# This may be replaced when dependencies are built.
