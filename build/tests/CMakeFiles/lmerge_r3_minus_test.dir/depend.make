# Empty dependencies file for lmerge_r3_minus_test.
# This may be replaced when dependencies are built.
