# Empty compiler generated dependencies file for lmerge_r1_test.
# This may be replaced when dependencies are built.
