file(REMOVE_RECURSE
  "CMakeFiles/lmerge_r1_test.dir/core/lmerge_r1_test.cc.o"
  "CMakeFiles/lmerge_r1_test.dir/core/lmerge_r1_test.cc.o.d"
  "lmerge_r1_test"
  "lmerge_r1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_r1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
