file(REMOVE_RECURSE
  "CMakeFiles/runtime_stats_test.dir/properties/runtime_stats_test.cc.o"
  "CMakeFiles/runtime_stats_test.dir/properties/runtime_stats_test.cc.o.d"
  "runtime_stats_test"
  "runtime_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
