# Empty dependencies file for runtime_stats_test.
# This may be replaced when dependencies are built.
