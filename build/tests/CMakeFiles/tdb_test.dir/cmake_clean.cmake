file(REMOVE_RECURSE
  "CMakeFiles/tdb_test.dir/temporal/tdb_test.cc.o"
  "CMakeFiles/tdb_test.dir/temporal/tdb_test.cc.o.d"
  "tdb_test"
  "tdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
