file(REMOVE_RECURSE
  "CMakeFiles/delay_test.dir/engine/delay_test.cc.o"
  "CMakeFiles/delay_test.dir/engine/delay_test.cc.o.d"
  "delay_test"
  "delay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
