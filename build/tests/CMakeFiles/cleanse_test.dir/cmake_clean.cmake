file(REMOVE_RECURSE
  "CMakeFiles/cleanse_test.dir/operators/cleanse_test.cc.o"
  "CMakeFiles/cleanse_test.dir/operators/cleanse_test.cc.o.d"
  "cleanse_test"
  "cleanse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleanse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
