file(REMOVE_RECURSE
  "CMakeFiles/policy_ablation_test.dir/core/policy_ablation_test.cc.o"
  "CMakeFiles/policy_ablation_test.dir/core/policy_ablation_test.cc.o.d"
  "policy_ablation_test"
  "policy_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
