# Empty dependencies file for in2t_test.
# This may be replaced when dependencies are built.
