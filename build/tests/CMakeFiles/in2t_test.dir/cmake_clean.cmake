file(REMOVE_RECURSE
  "CMakeFiles/in2t_test.dir/core/in2t_test.cc.o"
  "CMakeFiles/in2t_test.dir/core/in2t_test.cc.o.d"
  "in2t_test"
  "in2t_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in2t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
