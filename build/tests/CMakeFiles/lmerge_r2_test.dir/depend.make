# Empty dependencies file for lmerge_r2_test.
# This may be replaced when dependencies are built.
