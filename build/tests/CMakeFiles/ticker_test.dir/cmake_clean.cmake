file(REMOVE_RECURSE
  "CMakeFiles/ticker_test.dir/workload/ticker_test.cc.o"
  "CMakeFiles/ticker_test.dir/workload/ticker_test.cc.o.d"
  "ticker_test"
  "ticker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
