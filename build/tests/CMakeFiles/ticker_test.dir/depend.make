# Empty dependencies file for ticker_test.
# This may be replaced when dependencies are built.
