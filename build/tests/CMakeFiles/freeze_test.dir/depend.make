# Empty dependencies file for freeze_test.
# This may be replaced when dependencies are built.
