file(REMOVE_RECURSE
  "CMakeFiles/freeze_test.dir/temporal/freeze_test.cc.o"
  "CMakeFiles/freeze_test.dir/temporal/freeze_test.cc.o.d"
  "freeze_test"
  "freeze_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freeze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
