file(REMOVE_RECURSE
  "CMakeFiles/lmerge_operator_test.dir/core/lmerge_operator_test.cc.o"
  "CMakeFiles/lmerge_operator_test.dir/core/lmerge_operator_test.cc.o.d"
  "lmerge_operator_test"
  "lmerge_operator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
