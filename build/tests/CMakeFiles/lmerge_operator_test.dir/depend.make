# Empty dependencies file for lmerge_operator_test.
# This may be replaced when dependencies are built.
