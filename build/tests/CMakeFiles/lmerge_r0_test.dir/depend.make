# Empty dependencies file for lmerge_r0_test.
# This may be replaced when dependencies are built.
