file(REMOVE_RECURSE
  "CMakeFiles/multiway_join_test.dir/operators/multiway_join_test.cc.o"
  "CMakeFiles/multiway_join_test.dir/operators/multiway_join_test.cc.o.d"
  "multiway_join_test"
  "multiway_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiway_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
