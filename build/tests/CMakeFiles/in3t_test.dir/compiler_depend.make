# Empty compiler generated dependencies file for in3t_test.
# This may be replaced when dependencies are built.
