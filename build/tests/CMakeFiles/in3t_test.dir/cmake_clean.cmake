file(REMOVE_RECURSE
  "CMakeFiles/in3t_test.dir/core/in3t_test.cc.o"
  "CMakeFiles/in3t_test.dir/core/in3t_test.cc.o.d"
  "in3t_test"
  "in3t_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/in3t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
