# Empty compiler generated dependencies file for jumpstart_test.
# This may be replaced when dependencies are built.
