file(REMOVE_RECURSE
  "CMakeFiles/jumpstart_test.dir/integration/jumpstart_test.cc.o"
  "CMakeFiles/jumpstart_test.dir/integration/jumpstart_test.cc.o.d"
  "jumpstart_test"
  "jumpstart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jumpstart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
