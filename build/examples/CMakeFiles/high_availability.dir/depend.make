# Empty dependencies file for high_availability.
# This may be replaced when dependencies are built.
