file(REMOVE_RECURSE
  "CMakeFiles/high_availability.dir/high_availability.cpp.o"
  "CMakeFiles/high_availability.dir/high_availability.cpp.o.d"
  "high_availability"
  "high_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/high_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
