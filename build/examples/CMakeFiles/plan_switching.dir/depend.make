# Empty dependencies file for plan_switching.
# This may be replaced when dependencies are built.
