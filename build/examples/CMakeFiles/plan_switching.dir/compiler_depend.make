# Empty compiler generated dependencies file for plan_switching.
# This may be replaced when dependencies are built.
