file(REMOVE_RECURSE
  "CMakeFiles/plan_switching.dir/plan_switching.cpp.o"
  "CMakeFiles/plan_switching.dir/plan_switching.cpp.o.d"
  "plan_switching"
  "plan_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
