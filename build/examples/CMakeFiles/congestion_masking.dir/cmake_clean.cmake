file(REMOVE_RECURSE
  "CMakeFiles/congestion_masking.dir/congestion_masking.cpp.o"
  "CMakeFiles/congestion_masking.dir/congestion_masking.cpp.o.d"
  "congestion_masking"
  "congestion_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
