# Empty compiler generated dependencies file for congestion_masking.
# This may be replaced when dependencies are built.
