file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_enforce.dir/bench_fig7_enforce.cc.o"
  "CMakeFiles/bench_fig7_enforce.dir/bench_fig7_enforce.cc.o.d"
  "bench_fig7_enforce"
  "bench_fig7_enforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_enforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
