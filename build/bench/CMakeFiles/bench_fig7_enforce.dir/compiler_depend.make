# Empty compiler generated dependencies file for bench_fig7_enforce.
# This may be replaced when dependencies are built.
