file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_congestion.dir/bench_fig9_congestion.cc.o"
  "CMakeFiles/bench_fig9_congestion.dir/bench_fig9_congestion.cc.o.d"
  "bench_fig9_congestion"
  "bench_fig9_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
