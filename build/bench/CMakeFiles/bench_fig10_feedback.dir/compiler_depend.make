# Empty compiler generated dependencies file for bench_fig10_feedback.
# This may be replaced when dependencies are built.
