# Empty dependencies file for bench_fig2_memory_inorder.
# This may be replaced when dependencies are built.
