file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lag.dir/bench_fig5_lag.cc.o"
  "CMakeFiles/bench_fig5_lag.dir/bench_fig5_lag.cc.o.d"
  "bench_fig5_lag"
  "bench_fig5_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
