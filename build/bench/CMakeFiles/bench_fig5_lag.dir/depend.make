# Empty dependencies file for bench_fig5_lag.
# This may be replaced when dependencies are built.
