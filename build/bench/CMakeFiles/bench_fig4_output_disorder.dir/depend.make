# Empty dependencies file for bench_fig4_output_disorder.
# This may be replaced when dependencies are built.
