file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_output_disorder.dir/bench_fig4_output_disorder.cc.o"
  "CMakeFiles/bench_fig4_output_disorder.dir/bench_fig4_output_disorder.cc.o.d"
  "bench_fig4_output_disorder"
  "bench_fig4_output_disorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_output_disorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
