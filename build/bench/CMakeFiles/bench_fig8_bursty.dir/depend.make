# Empty dependencies file for bench_fig8_bursty.
# This may be replaced when dependencies are built.
