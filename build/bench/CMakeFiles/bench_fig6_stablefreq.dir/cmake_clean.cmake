file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_stablefreq.dir/bench_fig6_stablefreq.cc.o"
  "CMakeFiles/bench_fig6_stablefreq.dir/bench_fig6_stablefreq.cc.o.d"
  "bench_fig6_stablefreq"
  "bench_fig6_stablefreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_stablefreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
