file(REMOVE_RECURSE
  "CMakeFiles/lmerge_merge.dir/lmerge_merge.cc.o"
  "CMakeFiles/lmerge_merge.dir/lmerge_merge.cc.o.d"
  "lmerge_merge"
  "lmerge_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
