# Empty compiler generated dependencies file for lmerge_merge.
# This may be replaced when dependencies are built.
