file(REMOVE_RECURSE
  "CMakeFiles/lmerge_inspect.dir/lmerge_inspect.cc.o"
  "CMakeFiles/lmerge_inspect.dir/lmerge_inspect.cc.o.d"
  "lmerge_inspect"
  "lmerge_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
