# Empty compiler generated dependencies file for lmerge_inspect.
# This may be replaced when dependencies are built.
