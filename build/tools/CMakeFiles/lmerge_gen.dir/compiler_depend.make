# Empty compiler generated dependencies file for lmerge_gen.
# This may be replaced when dependencies are built.
