file(REMOVE_RECURSE
  "CMakeFiles/lmerge_gen.dir/lmerge_gen.cc.o"
  "CMakeFiles/lmerge_gen.dir/lmerge_gen.cc.o.d"
  "lmerge_gen"
  "lmerge_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmerge_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
